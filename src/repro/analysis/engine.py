"""Parallel, resumable experiment engine.

The paper's evaluation (Section 4, Figures 3-4) is a sweep: several random
instances per parameter value, every scheme on every instance through the
flow-level simulator.  The engine decomposes such a sweep into independent
*(sweep point x random try x scheme)* tasks and executes them either serially
in-process or fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`
(one task = generate the instance from its seed, compute the scheme's plan —
LP solve included — and simulate it).

Results stream into a :class:`~repro.analysis.runstore.RunStore` keyed by
``(topology fingerprint, workload config incl. seed, scheme signature)``,
where the scheme signature is the canonical stage-spec serialization of
:meth:`~repro.baselines.pipeline.PipelineScheme.signature` — stable across
processes and shared by every spelling of the same composition:

* an interrupted sweep resumes — already-persisted tasks are never re-run;
* repeated benchmark invocations with a warm store skip all LP/simulation
  work and only re-aggregate;
* parallel and serial execution produce bit-identical results, because every
  task derives its randomness from the config seed alone (covered by
  ``tests/analysis/test_engine.py``).

:class:`ExperimentSweep` remains as the serial-default alias so existing
callers keep working.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..baselines.base import Scheme
from ..core.flows import CoflowInstance
from ..core.network import Network
from ..sim import FlowLevelSimulator, SchemeComparison
from ..workloads.generator import CoflowGenerator, WorkloadConfig
from ..workloads.serialization import config_to_dict
from .runstore import RunStore, run_key
from .sweep import SweepPoint, SweepResult

__all__ = ["ExperimentEngine", "ExperimentSweep", "ExperimentTask", "EngineRunStats"]

#: One sweep point: display label plus the workload configs (one per random
#: try, each carrying its own seed) evaluated at that point.
PointSpec = Tuple[str, Sequence[WorkloadConfig]]


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of work: run one scheme on one generated instance."""

    point_index: int
    label: str
    trial: int
    scheme_index: int
    scheme_name: str
    config: WorkloadConfig
    key: str


@dataclass
class EngineRunStats:
    """Accounting for the most recent :meth:`ExperimentEngine.run_points`."""

    total_tasks: int = 0
    cached: int = 0
    executed: int = 0
    workers: int = 1
    seconds: float = 0.0

    @property
    def all_cached(self) -> bool:
        """True when a warm run store satisfied every task (no simulation)."""
        return self.total_tasks > 0 and self.executed == 0


# ----------------------------------------------------------------- task body

def _execute_task(
    network: Network,
    simulator: FlowLevelSimulator,
    scheme: Scheme,
    task: ExperimentTask,
    topology_fingerprint: str,
) -> Dict[str, Any]:
    """Generate the instance, plan, simulate; return the run-store record.

    Dispatches through :meth:`~repro.baselines.base.Scheme.simulate`, so
    online schemes run their arrival-driven re-planning loop while static
    schemes plan once and execute on the array kernel.
    """
    instance = CoflowGenerator(network, task.config).instance()
    result = scheme.simulate(instance, network, simulator)
    return {
        "scheme": scheme.name,
        "signature": scheme.signature(),
        "topology": topology_fingerprint,
        "config": config_to_dict(task.config),
        "metrics": result.metrics(),
        "events": result.events,
        "instance": instance.name,
    }


#: Per-worker state installed by the pool initializer (network and schemes
#: are pickled once per worker instead of once per task).
_WORKER_STATE: Dict[str, Any] = {}


def _worker_init(network: Network, schemes: Sequence[Scheme], fingerprint: str) -> None:
    _WORKER_STATE["network"] = network
    _WORKER_STATE["schemes"] = list(schemes)
    _WORKER_STATE["simulator"] = FlowLevelSimulator(network)
    _WORKER_STATE["fingerprint"] = fingerprint


def _worker_run(task: ExperimentTask) -> Tuple[str, Dict[str, Any]]:
    record = _execute_task(
        _WORKER_STATE["network"],
        _WORKER_STATE["simulator"],
        _WORKER_STATE["schemes"][task.scheme_index],
        task,
        _WORKER_STATE["fingerprint"],
    )
    return task.key, record


# -------------------------------------------------------------------- engine

class ExperimentEngine:
    """Run schemes over workload sweeps, in parallel and resumably.

    Parameters
    ----------
    network:
        The evaluation topology.  ``None`` requires ``base_config.topology``
        to carry a spec string (see :meth:`for_config`).
    schemes:
        The schemes to compare (each task pickles only its index, so schemes
        must be picklable for parallel runs — all built-in schemes are).
    tries:
        Random instances averaged per sweep point (the paper uses 10).
    metric:
        Attribute of :class:`~repro.sim.simulator.SimulationResult` reported
        by the resulting :class:`~repro.analysis.sweep.SweepResult`.
    workers:
        ``None``, 0 or 1 run serially in-process; ``>= 2`` fans tasks out
        over that many worker processes.
    store:
        A :class:`~repro.analysis.runstore.RunStore`, a path to a JSONL store
        file, or ``None`` for a process-local in-memory store.
    """

    def __init__(
        self,
        network: Network,
        schemes: Sequence[Scheme],
        tries: int = 10,
        metric: str = "weighted_completion_time",
        workers: Optional[int] = None,
        store: Union[RunStore, str, None] = None,
    ) -> None:
        if not schemes:
            raise ValueError("need at least one scheme")
        if tries < 1:
            raise ValueError("need at least one try per point")
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        self.network = network
        self.schemes = list(schemes)
        self.tries = tries
        self.metric = metric
        self.workers = workers
        self.simulator = FlowLevelSimulator(network)
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.topology_fingerprint = network.fingerprint()
        self.last_run_stats = EngineRunStats()

    @classmethod
    def for_config(
        cls, config: WorkloadConfig, schemes: Sequence[Scheme], **kwargs: Any
    ) -> "ExperimentEngine":
        """Build an engine on the topology named by ``config.topology``."""
        return cls(config.build_network(), schemes, **kwargs)

    # ----------------------------------------------------------------- pieces
    def run_instance(self, instance: CoflowInstance) -> SchemeComparison:
        """Run every scheme on one concrete instance (serial, uncached)."""
        comparison = SchemeComparison(metric=self.metric)
        for scheme in self.schemes:
            comparison.add(scheme.simulate(instance, self.network, self.simulator))
        return comparison

    def tasks_for(self, points: Sequence[PointSpec]) -> List[ExperimentTask]:
        """Expand point specs into the flat (point x try x scheme) task list."""
        tasks: List[ExperimentTask] = []
        for point_index, (label, configs) in enumerate(points):
            for trial, config in enumerate(configs):
                for scheme_index, scheme in enumerate(self.schemes):
                    tasks.append(
                        ExperimentTask(
                            point_index=point_index,
                            label=label,
                            trial=trial,
                            scheme_index=scheme_index,
                            scheme_name=scheme.name,
                            config=config,
                            key=run_key(
                                self.topology_fingerprint, config, scheme.signature()
                            ),
                        )
                    )
        return tasks

    # ------------------------------------------------------------------- runs
    def run_points(self, points: Sequence[PointSpec]) -> SweepResult:
        """Execute all tasks for ``points`` and aggregate a sweep result.

        Tasks whose key is already in the run store are served from it; the
        rest run serially or in the worker pool and stream into the store as
        they complete (so interruption loses at most the in-flight tasks).
        """
        started = time.perf_counter()
        tasks = self.tasks_for(points)
        pending = [task for task in tasks if self.store.get(task.key) is None]
        cached = len(tasks) - len(pending)

        workers = self.workers or 1
        if pending:
            if workers >= 2:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(self.network, self.schemes, self.topology_fingerprint),
                ) as pool:
                    futures = [pool.submit(_worker_run, task) for task in pending]
                    for future in as_completed(futures):
                        key, record = future.result()
                        self.store.put(key, record)
            else:
                for task in pending:
                    record = _execute_task(
                        self.network,
                        self.simulator,
                        self.schemes[task.scheme_index],
                        task,
                        self.topology_fingerprint,
                    )
                    self.store.put(task.key, record)

        result = SweepResult(metric=self.metric)
        result.points = [SweepPoint(label=label) for label, _ in points]
        for task in tasks:
            record = self.store.peek(task.key)
            assert record is not None, f"run store lost task {task.key}"
            result.points[task.point_index].add(
                task.scheme_name, float(record["metrics"][self.metric])
            )

        self.last_run_stats = EngineRunStats(
            total_tasks=len(tasks),
            cached=cached,
            executed=len(pending),
            workers=workers,
            seconds=time.perf_counter() - started,
        )
        return result

    def run(
        self,
        base_config: WorkloadConfig,
        parameter: str,
        values: Sequence[Any],
        label_format: str = "{value}",
    ) -> SweepResult:
        """Sweep one :class:`WorkloadConfig` field over ``values``.

        ``parameter`` may be any config field (``"coflow_width"`` is
        Figure 3, ``"num_coflows"`` Figure 4; ``"mean_flow_size"``,
        ``"pareto_shape"`` etc. open the scenario families); each point is
        averaged over ``self.tries`` random instances with distinct seeds.
        """
        points: List[PointSpec] = []
        for value in values:
            config = self._with_parameter(base_config, parameter, value)
            configs = [config.with_seed(config.seed + k) for k in range(self.tries)]
            points.append((label_format.format(value=value), configs))
        return self.run_points(points)

    @staticmethod
    def _with_parameter(
        config: WorkloadConfig, parameter: str, value: Any
    ) -> WorkloadConfig:
        known = {f.name for f in fields(WorkloadConfig)}
        if parameter not in known:
            raise ValueError(
                f"unknown sweep parameter {parameter!r} "
                f"(workload config fields: {', '.join(sorted(known))})"
            )
        current = getattr(config, parameter)
        if isinstance(current, bool):
            value = bool(value)
        elif isinstance(current, int):
            value = int(value)
        return replace(config, **{parameter: value})


#: Backwards-compatible name: the engine with its serial defaults is a
#: drop-in replacement for the original single-process sweep runner.
ExperimentSweep = ExperimentEngine
