"""Experiment engine, sweep aggregation and report formatting.

The analysis layer turns (topology, workload config, schemes) into the
paper's figures: :class:`ExperimentEngine` executes the (point x try x
scheme) task grid — serially or over a process pool, cached in a resumable
:class:`RunStore` — :class:`SweepResult` aggregates the metrics, and the
report helpers render the paper-style tables.
"""

from .engine import EngineRunStats, ExperimentEngine, ExperimentSweep, ExperimentTask
from .report import format_table, improvement_summary, ratio_table, sweep_table
from .runstore import RunStore, run_key
from .sweep import SweepPoint, SweepResult

__all__ = [
    "ExperimentEngine",
    "ExperimentSweep",
    "ExperimentTask",
    "EngineRunStats",
    "RunStore",
    "run_key",
    "SweepPoint",
    "SweepResult",
    "format_table",
    "sweep_table",
    "ratio_table",
    "improvement_summary",
]
