"""Experiment engine, sweep aggregation and report formatting.

The analysis layer turns (topology, workload config, schemes) into the
paper's figures: :class:`ExperimentEngine` executes the (point x try x
scheme) task grid — serially or over a process pool, cached in a resumable
:class:`RunStore` — :class:`SweepResult` aggregates the metrics, and the
report helpers render the paper-style tables.
"""

from .artifacts import (
    DEFAULT_SCHEMES,
    SCHEME_REGISTRY,
    SpecPoint,
    SpecRunResult,
    SweepSpec,
    build_schemes,
    export_artifacts,
    load_spec,
    provenance,
    result_from_store,
    run_spec,
    spec_from_dict,
    stats_summary,
)
from .engine import EngineRunStats, ExperimentEngine, ExperimentSweep, ExperimentTask
from .fabric import (
    MergeStats,
    ShardedRunStore,
    Worker,
    WorkerStats,
    expand_sources,
    merge_stores,
    write_merged,
)
from .report import (
    csv_report,
    failure_rows,
    format_csv,
    format_markdown,
    format_table,
    improvement_summary,
    ratio_table,
    render_report,
    sweep_table,
)
from .runstore import RunStore, run_key
from .sweep import SweepPoint, SweepResult

__all__ = [
    "ExperimentEngine",
    "ExperimentSweep",
    "ExperimentTask",
    "EngineRunStats",
    "RunStore",
    "run_key",
    "SweepPoint",
    "SweepResult",
    "format_table",
    "format_markdown",
    "format_csv",
    "sweep_table",
    "ratio_table",
    "improvement_summary",
    "csv_report",
    "failure_rows",
    "render_report",
    "SCHEME_REGISTRY",
    "DEFAULT_SCHEMES",
    "build_schemes",
    "SpecPoint",
    "SpecRunResult",
    "SweepSpec",
    "spec_from_dict",
    "load_spec",
    "run_spec",
    "result_from_store",
    "stats_summary",
    "provenance",
    "export_artifacts",
    "ShardedRunStore",
    "Worker",
    "WorkerStats",
    "MergeStats",
    "expand_sources",
    "merge_stores",
    "write_merged",
]
