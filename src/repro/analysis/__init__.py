"""Experiment sweeps and report formatting for the benchmark harness."""

from .report import format_table, improvement_summary, ratio_table, sweep_table
from .sweep import ExperimentSweep, SweepPoint, SweepResult

__all__ = [
    "ExperimentSweep",
    "SweepPoint",
    "SweepResult",
    "format_table",
    "sweep_table",
    "ratio_table",
    "improvement_summary",
]
