"""Declarative sweep specs, scheme registry and artifact export.

This module is the data layer behind the ``repro`` CLI (and the thin
benchmark wrappers): it turns a *sweep spec* — a YAML/JSON document naming a
scenario grid and the schemes to compare — into engine runs, and turns the
resulting run store into durable on-disk artifacts (run metadata with full
provenance, plus text/Markdown/CSV table renders).

A spec has two interchangeable shapes:

* **parameter sweep** (Figures 3 and 4)::

      name: fig3
      title: Figure 3 — coflow width sweep
      schemes: [LP-Based, Route-only, Schedule-only, Baseline]
      tries: 2
      base: {topology: "fat_tree(k=4)", num_coflows: 6, seed: 3000}
      sweep: {parameter: coflow_width, values: [4, 8, 16], label: "{value} flows"}

* **explicit point matrix** (the scenario matrix)::

      name: scenario-matrix
      schemes: [LP-Based, Baseline]
      points:
        - label: poisson/fat-tree
          config: {topology: "fat_tree(k=4)", seed: 7000}
        - label: incast/leaf-spine
          config: {topology: "leaf_spine(num_leaves=4)", endpoint_distribution: incast, seed: 7200}

Entries of ``schemes`` are scheme *specs* — legacy alias names or composed
``"pipeline(router=..., order=..., alloc=..., online=...)"`` expressions
(see :mod:`repro.baselines.spec` and ``specs/pipeline-matrix.yaml``), so a
spec document can enumerate stage cross-products declaratively.

Every point resolves to a full :class:`~repro.workloads.generator.
WorkloadConfig` (the ``base`` mapping is merged under each point's
``config``), and every config must carry a ``topology`` spec string so the
document alone describes the experiment.  Points may use different
topologies; :func:`run_spec` groups them and runs one engine per topology,
all sharing the spec's run store (store keys embed the topology
fingerprint, so this is safe).

:func:`result_from_store` rebuilds the same :class:`~repro.analysis.sweep.
SweepResult` from a run store *without executing anything* — this is what
``repro report`` uses, and why reports re-rendered from the store are
byte-identical to the ones written when the sweep ran.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import __version__
from ..baselines.base import Scheme
from ..baselines.spec import SCHEME_ALIASES, known_scheme_names, scheme_from_spec
from ..core.topologies import from_spec
from ..faults import FaultConfig
from ..workloads.generator import WorkloadConfig
from .engine import EngineRunStats, ExperimentEngine, PointSpec
from .report import REPORT_FORMATS, render_report
from .runstore import RunStore, run_key
from .sweep import SweepPoint, SweepResult

try:  # PyYAML is optional: JSON specs always work, YAML when it is present.
    import yaml as _yaml
except ImportError:  # pragma: no cover - exercised only on yaml-less installs
    _yaml = None

__all__ = [
    "SCHEME_REGISTRY",
    "SCHEME_ALIASES",
    "DEFAULT_SCHEMES",
    "build_schemes",
    "known_scheme_names",
    "scheme_from_spec",
    "SpecPoint",
    "SweepSpec",
    "SpecRunResult",
    "spec_from_dict",
    "strict_config_from_dict",
    "load_document",
    "load_spec",
    "run_spec",
    "result_from_store",
    "results_from_store",
    "stats_summary",
    "provenance",
    "provenance_lines",
    "export_artifacts",
    "ARTIFACT_FORMATS",
]

def _registry_factory(name: str) -> Callable[[], Scheme]:
    """A zero-argument factory resolving one alias through the spec grammar."""
    return lambda: scheme_from_spec(name)


#: Scheme display name -> zero-argument factory (compatibility view).
#: Every entry is a :data:`~repro.baselines.spec.SCHEME_ALIASES` alias
#: resolved through the spec grammar — a name alone fixes all stage
#: parameters (seeds included), which is what makes spec files
#: reproducible.  New code should call :func:`build_schemes` /
#: :func:`~repro.baselines.spec.scheme_from_spec` directly, which also
#: accept raw ``pipeline(router=..., order=..., ...)`` expressions.
SCHEME_REGISTRY: Dict[str, Callable[[], Scheme]] = {
    name: _registry_factory(name) for name in SCHEME_ALIASES
}

#: The four schemes of Section 4.3, in the paper's table order.
DEFAULT_SCHEMES: Tuple[str, ...] = (
    "LP-Based",
    "Route-only",
    "Schedule-only",
    "Baseline",
)

#: File extensions written by :func:`export_artifacts`, per report format.
ARTIFACT_FORMATS: Dict[str, str] = {"text": "txt", "markdown": "md", "csv": "csv"}


def build_schemes(names: Sequence[str]) -> List[Scheme]:
    """Instantiate schemes from spec strings (alias names or pipelines).

    Each entry is resolved through the spec grammar of
    :mod:`repro.baselines.spec`: a legacy alias name (``"Baseline"``,
    ``"Online-SEBF"``) or a raw composition such as
    ``"pipeline(router=lp, order=sebf, alloc=max-min)"``.  The first
    unresolvable entry raises ``ValueError`` naming the bad stage or
    scheme and listing the valid choices.

    Example::

        >>> [s.name for s in build_schemes(["Baseline", "LP-Based"])]
        ['Baseline', 'LP-Based']
    """
    return [scheme_from_spec(name) for name in names]


# -------------------------------------------------------------------- specs

def strict_config_from_dict(
    data: Mapping[str, Any], where: str = "config"
) -> WorkloadConfig:
    """Strict ``WorkloadConfig`` construction: unknown keys are an error.

    (The run store's ``config_from_dict`` is deliberately lenient so old
    stores survive new config fields; spec files and CLI inputs are
    hand-written, where silently dropping a typo would corrupt an
    experiment.)
    """
    known = {f.name for f in fields(WorkloadConfig)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown workload config key(s) {unknown} in {where} "
            f"(known: {', '.join(sorted(known))})"
        )
    return WorkloadConfig(**dict(data))


@dataclass(frozen=True)
class SpecPoint:
    """One labelled cell of a sweep spec: a display label plus its config."""

    label: str
    config: WorkloadConfig


@dataclass(frozen=True)
class SweepSpec:
    """A fully resolved experiment declaration (see the module docstring).

    ``points`` carry complete workload configs (topology spec included);
    ``tries`` random instances are drawn per point by offsetting each
    config's seed, exactly like :meth:`ExperimentEngine.run`.  ``schemes``
    entries are scheme specs — alias names or ``pipeline(...)``
    compositions — validated eagerly at construction.
    """

    name: str
    points: Tuple[SpecPoint, ...]
    schemes: Tuple[str, ...] = DEFAULT_SCHEMES
    tries: int = 2
    metric: str = "weighted_completion_time"
    #: Additional metric columns aggregated from the same run records and
    #: appended to reports (e.g. the per-coflow slowdown summaries
    #: ``mean_slowdown`` / ``max_slowdown``).
    extra_metrics: Tuple[str, ...] = ()
    reference: Optional[str] = "Baseline"
    title: Optional[str] = None
    #: Optional fault-injection spec string (``"rate=0.1,seed=7"``) baked
    #: into the document — chaos suites are declarative too.  The CLI's
    #: ``--inject-faults`` overrides it.
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a name")
        if not self.points:
            raise ValueError(f"spec {self.name!r} declares no points")
        if not self.schemes:
            raise ValueError(f"spec {self.name!r} declares no schemes")
        if self.tries < 1:
            raise ValueError("tries must be at least 1")
        if any(not m for m in self.extra_metrics):
            raise ValueError(f"spec {self.name!r} has an empty extra metric name")
        if self.faults is not None:
            try:
                FaultConfig.from_spec(self.faults)
            except ValueError as error:
                raise ValueError(
                    f"spec {self.name!r} has an invalid faults spec: {error}"
                )
        build_schemes(self.schemes)  # fail fast on unknown names
        if self.reference is not None and self.reference not in self.schemes:
            raise ValueError(
                f"reference scheme {self.reference!r} is not among the spec's "
                f"schemes {list(self.schemes)}"
            )
        for point in self.points:
            if point.config.topology is None:
                raise ValueError(
                    f"point {point.label!r} of spec {self.name!r} has no "
                    "topology; specs must be self-contained (set `topology` "
                    "in `base` or in the point's config)"
                )

    # ------------------------------------------------------------- expansion
    def point_specs(self) -> List[PointSpec]:
        """Expand to the engine's ``(label, [config per try])`` point list."""
        return [
            (
                point.label,
                [
                    point.config.with_seed(point.config.seed + k)
                    for k in range(self.tries)
                ],
            )
            for point in self.points
        ]

    def total_tasks(self) -> int:
        """Number of (point x try x scheme) tasks this spec expands to."""
        return len(self.points) * self.tries * len(self.schemes)

    def display_title(self) -> str:
        """The report title: the explicit ``title`` or the spec name."""
        return self.title or self.name

    def smoke(self) -> "SweepSpec":
        """A CI-sized copy: 1 try, at most 2 coflows of width 2 per point.

        Smoke runs still cross every point with every scheme — they shrink
        the instances, not the grid — so an end-to-end smoke exercises the
        same topology builders, LP solves and store keys as the real sweep,
        in seconds.  A field that *varies* across points is the swept axis
        and is left untouched (clamping it would collapse the sweep into
        identical points).
        """
        def varies(field_name: str) -> bool:
            values = {getattr(p.config, field_name) for p in self.points}
            return len(values) > 1

        clamps = {
            name: 2
            for name in ("num_coflows", "coflow_width")
            if not varies(name)
        }
        points = tuple(
            SpecPoint(
                label=point.label,
                config=replace(
                    point.config,
                    **{
                        name: min(getattr(point.config, name), limit)
                        for name, limit in clamps.items()
                    },
                ),
            )
            for point in self.points
        )
        return replace(self, points=points, tries=1, name=f"{self.name}-smoke")

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """A JSON/YAML-safe dict that :func:`spec_from_dict` inverts."""
        from ..workloads.serialization import config_to_dict

        data: Dict[str, Any] = {
            "name": self.name,
            "schemes": list(self.schemes),
            "tries": self.tries,
            "metric": self.metric,
            "reference": self.reference,
            "points": [
                {"label": p.label, "config": config_to_dict(p.config)}
                for p in self.points
            ],
        }
        if self.extra_metrics:
            data["extra_metrics"] = list(self.extra_metrics)
        if self.title is not None:
            data["title"] = self.title
        if self.faults is not None:
            data["faults"] = self.faults
        return data


_SPEC_KEYS = {
    "name",
    "title",
    "schemes",
    "tries",
    "metric",
    "extra_metrics",
    "reference",
    "base",
    "sweep",
    "points",
    "faults",
}
_SWEEP_KEYS = {"parameter", "values", "label"}


def spec_from_dict(data: Mapping[str, Any]) -> SweepSpec:
    """Parse a spec document (already loaded from YAML/JSON) into a spec.

    Exactly one of ``sweep`` (parameter grid over ``base``) and ``points``
    (explicit labelled configs, each merged over ``base``) must be present;
    unknown keys anywhere are an error.
    """
    unknown = sorted(set(data) - _SPEC_KEYS)
    if unknown:
        raise ValueError(
            f"unknown spec key(s) {unknown} (known: {', '.join(sorted(_SPEC_KEYS))})"
        )
    name = data.get("name")
    if not name:
        raise ValueError("spec needs a `name`")
    base = dict(data.get("base") or {})
    has_sweep = "sweep" in data
    has_points = "points" in data
    if has_sweep == has_points:
        raise ValueError(
            f"spec {name!r} must declare exactly one of `sweep` and `points`"
        )

    points: List[SpecPoint] = []
    if has_sweep:
        sweep = data["sweep"]
        unknown = sorted(set(sweep) - _SWEEP_KEYS)
        if unknown:
            raise ValueError(f"unknown sweep key(s) {unknown} in spec {name!r}")
        parameter = sweep.get("parameter")
        values = sweep.get("values")
        if not parameter or not values:
            raise ValueError(
                f"spec {name!r}: `sweep` needs `parameter` and a non-empty `values`"
            )
        label_format = sweep.get("label", "{value}")
        base_config = strict_config_from_dict(base, f"spec {name!r} base")
        for value in values:
            config = ExperimentEngine._with_parameter(base_config, parameter, value)
            points.append(SpecPoint(label_format.format(value=value), config))
    else:
        for index, entry in enumerate(data["points"]):
            extra = sorted(set(entry) - {"label", "config"})
            if extra:
                raise ValueError(
                    f"unknown point key(s) {extra} in spec {name!r} point {index}"
                )
            merged = {**base, **dict(entry.get("config") or {})}
            label = entry.get("label") or f"point {index}"
            points.append(
                SpecPoint(label, strict_config_from_dict(merged, f"point {label!r}"))
            )

    kwargs: Dict[str, Any] = {}
    if "schemes" in data:
        kwargs["schemes"] = tuple(data["schemes"])
    if "tries" in data:
        kwargs["tries"] = int(data["tries"])
    if "metric" in data:
        kwargs["metric"] = str(data["metric"])
    if "extra_metrics" in data:
        kwargs["extra_metrics"] = tuple(str(m) for m in data["extra_metrics"])
    if "reference" in data:
        kwargs["reference"] = data["reference"]
    if "faults" in data and data["faults"] is not None:
        kwargs["faults"] = str(data["faults"])
    return SweepSpec(
        name=str(name),
        title=data.get("title"),
        points=tuple(points),
        **kwargs,
    )


def load_document(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a YAML or JSON mapping from disk (extension decides the parser).

    YAML needs PyYAML; when it is absent, ``.json`` documents keep working
    and ``.yaml``/``.yml`` raise with a pointer to the JSON fallback.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix in (".yaml", ".yml"):
        if _yaml is None:
            raise RuntimeError(
                f"cannot load {path}: PyYAML is not installed "
                "(use a .json document instead)"
            )
        data = _yaml.safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, Mapping):
        raise ValueError(f"{path} does not contain a mapping")
    return dict(data)


def load_spec(path: Union[str, Path]) -> SweepSpec:
    """Load a sweep spec from a ``.yaml``/``.yml`` or ``.json`` file."""
    return spec_from_dict(load_document(path))


# --------------------------------------------------------------------- runs

def _topology_groups(spec: SweepSpec) -> List[Tuple[str, List[int]]]:
    """Point indices grouped by topology spec string, first-seen order."""
    groups: Dict[str, List[int]] = {}
    for index, point in enumerate(spec.points):
        groups.setdefault(point.config.topology, []).append(index)
    return list(groups.items())


@dataclass
class SpecRunResult:
    """What :func:`run_spec` returns: the aggregate plus its accounting."""

    spec: SweepSpec
    result: SweepResult
    stats: EngineRunStats
    #: topology spec string -> network fingerprint actually used.
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: extra metric name -> its aggregate (one per ``spec.extra_metrics``).
    extras: Dict[str, SweepResult] = field(default_factory=dict)


def run_spec(
    spec: SweepSpec,
    store: Union[RunStore, str, Path, None] = None,
    workers: Optional[int] = None,
    faults: Union[FaultConfig, str, None] = None,
    max_retries: int = 2,
    task_timeout: Optional[float] = None,
    retry_failed: bool = False,
    lp_time_limit: Optional[float] = None,
) -> SpecRunResult:
    """Execute a sweep spec on the experiment engine.

    One engine is created per distinct topology in the spec (the engine is
    single-network); all engines share ``store``, whose keys embed the
    topology fingerprint.  Tasks already in the store are never re-run, so
    invoking this against a warm store is pure aggregation.

    The fault-tolerance knobs mirror :class:`ExperimentEngine`'s:
    ``faults`` enables deterministic injection (``None`` falls back to the
    spec's own ``faults`` entry), ``max_retries``/``task_timeout`` bound
    transient retries and per-task wall-clock, ``retry_failed`` re-runs
    stored failure records, ``lp_time_limit`` budgets every HiGHS solve.
    """
    if not isinstance(store, RunStore):
        store = RunStore(store)
    if faults is None and spec.faults is not None:
        faults = spec.faults
    if isinstance(faults, str):
        faults = FaultConfig.from_spec(faults)
    point_specs = spec.point_specs()
    merged = SweepResult(metric=spec.metric)
    merged.points = [SweepPoint(label=label) for label, _ in point_specs]
    stats = EngineRunStats(workers=workers or 1)
    fingerprints: Dict[str, str] = {}
    for topology, indices in _topology_groups(spec):
        engine = ExperimentEngine(
            from_spec(topology),
            build_schemes(spec.schemes),
            tries=spec.tries,
            metric=spec.metric,
            workers=workers,
            store=store,
            faults=faults,
            max_retries=max_retries,
            task_timeout=task_timeout,
            retry_failed=retry_failed,
            lp_time_limit=lp_time_limit,
        )
        fingerprints[topology] = engine.topology_fingerprint
        group_result = engine.run_points([point_specs[i] for i in indices])
        for index, point in zip(indices, group_result.points):
            merged.points[index] = point
        stats.total_tasks += engine.last_run_stats.total_tasks
        stats.cached += engine.last_run_stats.cached
        stats.executed += engine.last_run_stats.executed
        stats.seconds += engine.last_run_stats.seconds
        stats.failed += engine.last_run_stats.failed
        stats.retried += engine.last_run_stats.retried
        stats.pool_restarts += engine.last_run_stats.pool_restarts
    stats.skipped_records = store.skipped_lines
    extras = (
        results_from_store(spec, store, spec.extra_metrics)[0]
        if spec.extra_metrics
        else {}
    )
    return SpecRunResult(
        spec=spec, result=merged, stats=stats, fingerprints=fingerprints,
        extras=extras,
    )


def results_from_store(
    spec: SweepSpec, store: RunStore, metrics: Sequence[str]
) -> Tuple[Dict[str, SweepResult], Dict[str, int], Dict[str, str]]:
    """Rebuild several metrics' :class:`SweepResult` in one store pass.

    Iterates the spec's (point x try x scheme) grid in the same order the
    engine aggregates it — once, peeking each record a single time however
    many metrics are requested.  Returns ``(results, missing,
    fingerprints)``: per-metric results and per-metric missing-cell counts
    (a record lacking a metric — e.g. written by an older version — counts
    as missing for that metric only), plus topology spec -> network
    fingerprint.

    Failure records (``{"failed": true, ...}``, written by the engine for
    permanently failed tasks) are routed to each result's failure ledger
    instead of counting as missing — a failed cell is *known* bad, not
    absent, and reports render it as NaN with a failures block.
    """
    schemes = build_schemes(spec.schemes)
    signatures = [scheme.signature() for scheme in schemes]
    fingerprints = {
        topology: from_spec(topology).fingerprint()
        for topology, _ in _topology_groups(spec)
    }
    results = {metric: SweepResult(metric=metric) for metric in metrics}
    for result in results.values():
        result.points = [SweepPoint(label=point.label) for point in spec.points]
    missing = {metric: 0 for metric in metrics}
    for index, (label, configs) in enumerate(spec.point_specs()):
        fingerprint = fingerprints[spec.points[index].config.topology]
        for config in configs:
            for scheme, signature in zip(schemes, signatures):
                record = store.peek(run_key(fingerprint, config, signature))
                if record is not None and record.get("failed"):
                    error = str(record.get("error", "UnknownError"))
                    for metric in metrics:
                        results[metric].points[index].add_failure(
                            scheme.name, error
                        )
                    continue
                values = record.get("metrics", {}) if record is not None else {}
                for metric in metrics:
                    if metric not in values:
                        missing[metric] += 1
                        continue
                    results[metric].points[index].add(
                        scheme.name, float(values[metric])
                    )
    return results, missing, fingerprints


def result_from_store(
    spec: SweepSpec, store: RunStore, metric: Optional[str] = None
) -> Tuple[SweepResult, int, Dict[str, str]]:
    """Rebuild a spec's :class:`SweepResult` from a run store, running nothing.

    Single-metric convenience over :func:`results_from_store` (``metric``
    defaults to the spec's primary metric), returning ``(result, missing,
    fingerprints)``; a complete store yields a result identical to
    :func:`run_spec`'s, and a partial store simply contributes no value for
    its missing cells.
    """
    metric = metric or spec.metric
    results, missing, fingerprints = results_from_store(spec, store, [metric])
    return results[metric], missing[metric], fingerprints


def stats_summary(stats: EngineRunStats) -> str:
    """One-line cache/parallelism report for a finished spec run.

    Failure accounting (failed / retried tasks, pool restarts) is appended
    only when non-zero, so clean runs keep the historical line format.
    """
    line = (
        f"engine: {stats.total_tasks} tasks, {stats.cached} cached, "
        f"{stats.executed} executed, {stats.workers} worker(s), "
        f"{stats.seconds:.2f}s"
    )
    trouble = []
    if stats.failed:
        trouble.append(f"{stats.failed} failed")
    if stats.retried:
        trouble.append(f"{stats.retried} retried")
    if stats.pool_restarts:
        trouble.append(f"{stats.pool_restarts} pool restart(s)")
    if stats.skipped_records:
        trouble.append(f"{stats.skipped_records} skipped record(s)")
    if trouble:
        line += " [" + ", ".join(trouble) + "]"
    return line


# --------------------------------------------------------------- provenance

def provenance() -> Dict[str, Any]:
    """Environment + deviation fingerprint stamped into every artifact.

    Records the package version, the interpreter and core dependency
    versions, the LP solver actually in use, and the deliberate deviations
    from the paper (DESIGN.md sections) — so a result file is interpretable
    long after the run.
    """
    import networkx
    import numpy
    import scipy

    return {
        "package": "repro",
        "version": __version__,
        "paper": (
            "Jahanjou, Kantor & Rajaraman — Asymptotically Optimal "
            "Approximation Algorithms for Coflow Scheduling (SPAA 2017)"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "networkx": networkx.__version__,
        "solver": "HiGHS via scipy.optimize.linprog (paper: IBM CPLEX)",
        "deviations": [
            "LP solver: open-source HiGHS replaces IBM CPLEX (DESIGN.md §1)",
            "evaluation: flow-level simulator, not a packet-level testbed (DESIGN.md §6)",
            "rounding constants: feasible (alpha=0.49, D=4, eps=0.55), not the "
            "paper's optimized triple (DESIGN.md §4)",
            "Srinivasan–Teo replaced by the practical delay+list-scheduling "
            "recipe (DESIGN.md §5)",
            "interval bandwidth normalised by interval length (DESIGN.md §3)",
        ],
    }


def provenance_lines() -> List[str]:
    """The ``repro --version`` output: version plus the deviation list."""
    info = provenance()
    lines = [
        f"repro {info['version']} — {info['paper']}",
        f"python {info['python']}, numpy {info['numpy']}, "
        f"scipy {info['scipy']}, networkx {info['networkx']}",
        f"solver: {info['solver']}",
        "deliberate deviations from the paper:",
    ]
    lines.extend(f"  - {deviation}" for deviation in info["deviations"])
    return lines


# ---------------------------------------------------------------- artifacts

def export_artifacts(
    out_dir: Union[str, Path],
    spec: SweepSpec,
    result: SweepResult,
    stats: Optional[EngineRunStats] = None,
    fingerprints: Optional[Mapping[str, str]] = None,
    store: Optional[RunStore] = None,
    extras: Optional[Mapping[str, SweepResult]] = None,
    extra_metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Path]:
    """Write a sweep's durable artifacts under ``out_dir/<spec.name>/``.

    Files written (returned as ``{kind: path}``):

    * ``run.json`` — spec document, provenance, engine statistics, topology
      fingerprints and the store location: everything needed to interpret
      or exactly re-run the sweep;
    * ``report.txt`` / ``report.md`` / ``report.csv`` — the paper-style
      tables in every format of
      :data:`~repro.analysis.report.REPORT_FORMATS`.

    ``extra_metadata`` entries are merged into ``run.json`` top-level —
    the sharded sweep coordinator records its fleet accounting there
    (shard count, per-shard stats, lost shards).
    """
    target = Path(out_dir) / spec.name
    target.mkdir(parents=True, exist_ok=True)
    paths: Dict[str, Path] = {}

    metadata: Dict[str, Any] = {
        "spec": spec.to_dict(),
        "provenance": provenance(),
        "topology_fingerprints": dict(fingerprints or {}),
        "store": str(store.path) if store is not None and store.path else None,
        "total_tasks": spec.total_tasks(),
    }
    if extra_metadata:
        metadata.update(dict(extra_metadata))
    if stats is not None:
        metadata["engine"] = {
            "total_tasks": stats.total_tasks,
            "cached": stats.cached,
            "executed": stats.executed,
            "workers": stats.workers,
            "seconds": round(stats.seconds, 3),
            "failed": stats.failed,
            "retried": stats.retried,
            "pool_restarts": stats.pool_restarts,
            "skipped_records": stats.skipped_records,
            "coverage": round(stats.coverage, 6),
        }
    paths["run"] = target / "run.json"
    paths["run"].write_text(json.dumps(metadata, indent=2, sort_keys=True) + "\n")

    for fmt in REPORT_FORMATS:
        rendered = render_report(
            result,
            spec.display_title(),
            reference=spec.reference,
            fmt=fmt,
            extras=extras,
        )
        path = target / f"report.{ARTIFACT_FORMATS[fmt]}"
        path.write_text(rendered if rendered.endswith("\n") else rendered + "\n")
        paths[fmt] = path
    return paths
