"""Rendering experiment results as text, Markdown and CSV tables.

The benchmark harness and the ``repro report`` CLI print, for every figure
and table of the paper, the same rows/series the paper reports: per-point
average completion times per scheme (the upper panel of Figures 3 and 4),
the ratios with respect to the Baseline scheme (the lower panel), and the
headline average-improvement percentages of Section 4.3.

Three output formats share the same row-building code so they can never
disagree:

* **text** — aligned ASCII tables, directly comparable with the paper's
  plots (:func:`format_table`);
* **markdown** — GitHub pipe tables for docs and CI summaries
  (:func:`format_markdown`);
* **csv** — one long-format table per sweep (point x scheme rows) for
  downstream tooling (:func:`format_csv`, :func:`csv_report`).

All renderers tolerate sparse results (a scheme missing at a point renders
as ``nan``), so a partially filled run store — e.g. an interrupted
``repro sweep`` — can still be reported.
"""

from __future__ import annotations

import csv
import io
from typing import List, Mapping, Optional, Sequence, Tuple

from .sweep import SweepPoint, SweepResult

__all__ = [
    "format_table",
    "format_markdown",
    "format_csv",
    "sweep_rows",
    "ratio_rows",
    "failure_rows",
    "sweep_table",
    "ratio_table",
    "improvement_summary",
    "csv_report",
    "render_report",
    "REPORT_FORMATS",
]

#: Formats understood by :func:`render_report` (and the ``repro`` CLI).
REPORT_FORMATS = ("text", "markdown", "csv")


def _render_cell(cell: object, float_format: str) -> str:
    """Render one table cell (floats through ``float_format``)."""
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_render_cell(c, float_format) for c in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(r[col]) for r in rendered)) if rendered else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a GitHub-flavoured Markdown pipe table.

    Example::

        >>> print(format_markdown(["a", "b"], [[1, 2.0]]))
        | a | b |
        | --- | --- |
        | 1 | 2.00 |
    """
    lines: List[str] = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("| " + " | ".join("---" for _ in headers) + " |")
    for row in rows:
        lines.append(
            "| " + " | ".join(_render_cell(c, float_format) for c in row) + " |"
        )
    return "\n".join(lines)


def format_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.6g}",
) -> str:
    """Render rows as an RFC-4180 CSV document (header line included).

    Floats go through ``float_format`` (default ``{:.6g}``) so output is
    byte-stable across runs; everything else is stringified by the ``csv``
    module, which handles quoting.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_render_cell(c, float_format) for c in row])
    return buffer.getvalue()


# ------------------------------------------------------------- row builders

def _mean(point: SweepPoint, scheme: str) -> float:
    """Mean value of ``scheme`` at ``point``, NaN when the scheme is absent."""
    values = point.values.get(scheme)
    if not values:
        return float("nan")
    return point.mean(scheme)


def _ratio(point: SweepPoint, scheme: str, reference: str) -> float:
    """Per-try ratio of ``scheme`` to ``reference``, NaN when either is absent."""
    if not point.values.get(scheme) or not point.values.get(reference):
        return float("nan")
    return point.ratio_to(scheme, reference)


def sweep_rows(result: SweepResult) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) of the per-point scheme means (a figure's upper panel)."""
    schemes = result.schemes()
    headers = ["point"] + schemes
    rows: List[List[object]] = [
        [point.label] + [_mean(point, s) for s in schemes] for point in result.points
    ]
    return headers, rows


def ratio_rows(
    result: SweepResult, reference: str
) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) of the per-point ratios to ``reference`` (lower panel)."""
    schemes = result.schemes()
    headers = ["point"] + schemes
    rows: List[List[object]] = [
        [point.label] + [_ratio(point, s, reference) for s in schemes]
        for point in result.points
    ]
    return headers, rows


def failure_rows(result: SweepResult) -> Tuple[List[str], List[List[object]]]:
    """(headers, rows) of the failures summary: one row per failed cell.

    Each row names the point, the scheme, how many tries failed out of how
    many were attempted at that cell, and the error types with counts
    (``LPInfeasibleError x2``) — enough to triage from the report alone.
    """
    headers = ["point", "scheme", "failed", "tries", "errors"]
    rows: List[List[object]] = []
    for point in result.points:
        for scheme, errors in point.failures.items():
            counts: dict = {}
            for error in errors:
                counts[error] = counts.get(error, 0) + 1
            summary = ", ".join(
                f"{error} x{n}" if n > 1 else error
                for error, n in sorted(counts.items())
            )
            attempted = len(errors) + len(point.values.get(scheme, []))
            rows.append([point.label, scheme, len(errors), attempted, summary])
    return headers, rows


# ------------------------------------------------------------ whole reports

def sweep_table(
    result: SweepResult, title: str, value_label: str = "avg completion time"
) -> str:
    """Upper panel of a figure: mean objective per scheme per sweep point."""
    headers, rows = sweep_rows(result)
    return format_table(headers, rows, title=f"{title} — {value_label}")


def ratio_table(result: SweepResult, reference: str, title: str) -> str:
    """Lower panel of a figure: ratio of each scheme to the reference scheme."""
    headers, rows = ratio_rows(result, reference)
    return format_table(
        headers, rows, title=f"{title} — ratio w.r.t. {reference}", float_format="{:.3f}"
    )


def improvement_summary(
    result: SweepResult, scheme: str, references: Sequence[str]
) -> str:
    """Section-4.3 style sentence: average improvement of ``scheme`` over each reference."""
    parts = []
    for reference in references:
        gain = result.average_improvement(scheme, reference)
        parts.append(f"{gain:.0f}% over {reference}")
    return f"Average improvement of {scheme}: " + ", ".join(parts)


def csv_report(
    result: SweepResult,
    reference: Optional[str] = None,
    extras: Optional[Mapping[str, SweepResult]] = None,
) -> str:
    """One long-format CSV for a whole sweep: a row per (point, scheme).

    Columns: ``point, scheme, tries, mean, std, ratio_to_<reference>`` (the
    ratio column is omitted when ``reference`` is ``None``), plus one
    ``mean_<metric>`` column per entry of ``extras`` (extra metric
    aggregates over the same grid, e.g. the per-coflow slowdown summaries).
    A sweep that recorded failures gains a trailing ``failures`` column
    (failed tries per cell); fully successful sweeps keep the historical
    column set, so stored reports stay byte-identical.
    """
    extras = extras or {}
    with_failures = result.has_failures()
    headers = ["point", "scheme", "tries", "mean", "std"]
    if reference is not None:
        headers.append(f"ratio_to_{reference}")
    headers.extend(f"mean_{metric}" for metric in extras)
    if with_failures:
        headers.append("failures")
    rows: List[List[object]] = []
    for index, point in enumerate(result.points):
        for scheme in result.schemes():
            values = point.values.get(scheme, [])
            row: List[object] = [
                point.label,
                scheme,
                len(values),
                _mean(point, scheme),
                point.std(scheme) if values else float("nan"),
            ]
            if reference is not None:
                row.append(_ratio(point, scheme, reference))
            for extra in extras.values():
                row.append(_mean(extra.points[index], scheme))
            if with_failures:
                row.append(point.failure_count(scheme))
            rows.append(row)
    return format_csv(headers, rows)


def render_report(
    result: SweepResult,
    title: str,
    reference: Optional[str] = None,
    fmt: str = "text",
    extras: Optional[Mapping[str, SweepResult]] = None,
) -> str:
    """Render a full sweep report in one of :data:`REPORT_FORMATS`.

    ``text`` and ``markdown`` emit the paper's two panels (values then
    ratios, when ``reference`` is given); ``csv`` emits the long-format
    table of :func:`csv_report`.  ``extras`` maps additional metric names to
    their aggregates over the same grid (see
    :attr:`~repro.analysis.artifacts.SweepSpec.extra_metrics`); each adds a
    table block (text/markdown) or a mean column (csv).  Both ``repro
    sweep`` and ``repro report`` call this, so a report re-rendered from the
    run store alone is byte-identical to the one written when the sweep ran.
    """
    if fmt not in REPORT_FORMATS:
        raise ValueError(f"unknown report format {fmt!r} (known: {', '.join(REPORT_FORMATS)})")
    if fmt == "csv":
        return csv_report(result, reference, extras)
    table = format_table if fmt == "text" else format_markdown
    value_headers, value_rows = sweep_rows(result)
    blocks = [
        table(value_headers, value_rows, title=f"{title} — avg weighted completion time")
    ]
    if reference is not None:
        ratio_headers, rows = ratio_rows(result, reference)
        blocks.append(
            table(
                ratio_headers,
                rows,
                title=f"{title} — ratio w.r.t. {reference}",
                float_format="{:.3f}",
            )
        )
    for metric, extra in (extras or {}).items():
        extra_headers, extra_rows = sweep_rows(extra)
        blocks.append(
            table(
                extra_headers,
                extra_rows,
                title=f"{title} — avg {metric}",
                float_format="{:.3f}",
            )
        )
    if result.has_failures():
        failure_headers, failed = failure_rows(result)
        blocks.append(
            table(
                failure_headers,
                failed,
                title=(
                    f"{title} — failures "
                    f"({result.total_failures()} failed task(s); "
                    "failed cells render as nan)"
                ),
            )
        )
    return "\n\n".join(blocks)
