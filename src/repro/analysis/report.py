"""Plain-text reporting of experiment results.

The benchmark harness prints, for every figure and table of the paper, the
same rows/series the paper reports: per-point average completion times per
scheme (the upper panel of Figures 3 and 4), the ratios with respect to the
Baseline scheme (the lower panel), and the headline average-improvement
percentages of Section 4.3.  Everything is formatted as aligned ASCII tables
so the benchmark output is directly comparable with the paper's plots.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .sweep import SweepResult

__all__ = ["format_table", "sweep_table", "ratio_table", "improvement_summary"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(r[col]) for r in rendered)) if rendered else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sweep_table(
    result: SweepResult, title: str, value_label: str = "avg completion time"
) -> str:
    """Upper panel of a figure: mean objective per scheme per sweep point."""
    schemes = result.schemes()
    headers = ["point"] + schemes
    rows = []
    for point in result.points:
        rows.append([point.label] + [point.mean(s) for s in schemes])
    return format_table(headers, rows, title=f"{title} — {value_label}")


def ratio_table(result: SweepResult, reference: str, title: str) -> str:
    """Lower panel of a figure: ratio of each scheme to the reference scheme."""
    schemes = result.schemes()
    headers = ["point"] + schemes
    rows = []
    for point in result.points:
        rows.append(
            [point.label] + [point.ratio_to(s, reference) for s in schemes]
        )
    return format_table(
        headers, rows, title=f"{title} — ratio w.r.t. {reference}", float_format="{:.3f}"
    )


def improvement_summary(
    result: SweepResult, scheme: str, references: Sequence[str]
) -> str:
    """Section-4.3 style sentence: average improvement of ``scheme`` over each reference."""
    parts = []
    for reference in references:
        gain = result.average_improvement(scheme, reference)
        parts.append(f"{gain:.0f}% over {reference}")
    return f"Average improvement of {scheme}: " + ", ".join(parts)
