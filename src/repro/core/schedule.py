"""Schedule representations and feasibility validation.

Two schedule types mirror the paper's two coflow models:

* :class:`CircuitSchedule` — for circuit-based coflows.  Each flow gets a
  path and a piecewise-constant bandwidth function (Lemma 1 shows piecewise
  constant bandwidths are WLOG).  Feasibility means: edge capacities are
  respected at every point in time, release times are respected, and every
  flow delivers exactly its size.

* :class:`PacketSchedule` — for packet-based coflows.  Time is discrete; each
  packet performs a sequence of moves ``(t, u, v)`` meaning it crosses the
  edge ``u -> v`` during time step ``t`` (arriving at ``v`` at time ``t+1``).
  Feasibility means: moves form a path from source to destination, start no
  earlier than the release time, moves of one packet are time-ordered and
  chained, and no edge carries two packets in the same step.

Both classes compute flow and coflow completion times and the weighted sum
objective (1) of the paper, and both have ``validate`` methods that raise
:class:`ScheduleError` with a precise message on the first violation found.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .flows import CoflowInstance, Flow, FlowId
from .network import Network, path_edges

__all__ = [
    "ScheduleError",
    "BandwidthSegment",
    "CircuitSchedule",
    "PacketMove",
    "PacketSchedule",
]


class ScheduleError(ValueError):
    """Raised when a schedule violates a feasibility constraint."""


# --------------------------------------------------------------------------
# Circuit schedules
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class BandwidthSegment:
    """A constant-rate segment: ``rate`` bandwidth over ``[start, end)``."""

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"segment end ({self.end}) must exceed start ({self.start})"
            )
        if self.rate < 0:
            raise ValueError(f"segment rate must be non-negative, got {self.rate}")
        if self.start < 0:
            raise ValueError("segment start must be non-negative")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def volume(self) -> float:
        """Data delivered during this segment."""
        return self.rate * self.duration


class CircuitSchedule:
    """A complete circuit-model schedule: per-flow path + bandwidth segments."""

    def __init__(self) -> None:
        self._paths: Dict[FlowId, Tuple[object, ...]] = {}
        self._segments: Dict[FlowId, List[BandwidthSegment]] = {}

    # ------------------------------------------------------------------ build
    def set_path(self, fid: FlowId, path: Sequence[object]) -> None:
        """Assign the routing path of flow ``fid``."""
        if len(path) < 2:
            raise ScheduleError(f"path for flow {fid} must have at least two nodes")
        self._paths[fid] = tuple(path)
        self._segments.setdefault(fid, [])

    def add_segment(self, fid: FlowId, start: float, end: float, rate: float) -> None:
        """Append a constant-bandwidth segment for flow ``fid``.

        Zero-rate segments are ignored.  Segments may be added in any order;
        they are kept sorted by start time.
        """
        if fid not in self._paths:
            raise ScheduleError(f"set_path must be called before add_segment for {fid}")
        if rate <= 0:
            return
        seg = BandwidthSegment(start=start, end=end, rate=rate)
        insort(self._segments[fid], seg, key=lambda s: (s.start, s.end))

    def extend_segments(
        self, fid: FlowId, segments: Iterable[Tuple[float, float, float]]
    ) -> None:
        """Bulk-append time-ordered ``(start, end, rate)`` segments for ``fid``.

        The array-based simulator kernel records one flow's whole bandwidth
        function at once; this append skips the per-segment ``insort`` of
        :meth:`add_segment` but therefore *requires* the segments to be
        sorted by start time and to start no earlier than the last segment
        already recorded for the flow (:class:`ScheduleError` otherwise).
        Zero-rate segments are ignored, as in :meth:`add_segment`.
        """
        if fid not in self._paths:
            raise ScheduleError(
                f"set_path must be called before extend_segments for {fid}"
            )
        existing = self._segments[fid]
        last_start = existing[-1].start if existing else -math.inf
        appended: List[BandwidthSegment] = []
        for start, end, rate in segments:
            if rate <= 0:
                continue
            if start < last_start:
                raise ScheduleError(
                    f"bulk segments for flow {fid} are out of order: "
                    f"start {start} precedes previous start {last_start}"
                )
            last_start = start
            appended.append(BandwidthSegment(start=start, end=end, rate=rate))
        existing.extend(appended)

    # -------------------------------------------------------------- accessors
    def flow_ids(self) -> List[FlowId]:
        return sorted(self._paths.keys())

    def path(self, fid: FlowId) -> Tuple[object, ...]:
        try:
            return self._paths[fid]
        except KeyError as exc:
            raise KeyError(f"flow {fid} is not in the schedule") from exc

    def segments(self, fid: FlowId) -> List[BandwidthSegment]:
        return list(self._segments.get(fid, []))

    def delivered_volume(self, fid: FlowId, until: Optional[float] = None) -> float:
        """Total volume delivered for flow ``fid`` (optionally up to ``until``)."""
        total = 0.0
        for seg in self._segments.get(fid, []):
            if until is None:
                total += seg.volume
            else:
                overlap = max(0.0, min(seg.end, until) - seg.start)
                total += seg.rate * overlap
        return total

    def start_time(self, fid: FlowId) -> float:
        """Time the first non-zero-rate segment of the flow begins."""
        segs = self._segments.get(fid, [])
        if not segs:
            raise ScheduleError(f"flow {fid} has no bandwidth segments")
        return segs[0].start

    def flow_completion_time(self, fid: FlowId, size: Optional[float] = None) -> float:
        """Completion time of flow ``fid``.

        Without ``size`` this is simply the end of the last segment.  With
        ``size`` the exact point inside the last needed segment at which the
        cumulative delivered volume reaches ``size`` is returned (equation (2)
        of the paper: the smallest ``c`` with ``int_0^c b(t) dt = sigma``).
        """
        segs = self._segments.get(fid, [])
        if size is not None and size <= 1e-15:
            # Zero-size flows complete the moment they start (or at time 0).
            return segs[0].start if segs else 0.0
        if not segs:
            raise ScheduleError(f"flow {fid} has no bandwidth segments")
        if size is None:
            return segs[-1].end
        remaining = size
        for seg in segs:
            if seg.volume >= remaining - 1e-12:
                return seg.start + remaining / seg.rate
            remaining -= seg.volume
        raise ScheduleError(
            f"flow {fid} delivers {self.delivered_volume(fid):.6f} < size {size}"
        )

    def coflow_completion_times(self, instance: CoflowInstance) -> Dict[int, float]:
        """Completion time of each coflow = max completion over its flows."""
        completions: Dict[int, float] = {}
        for i, j, flow in instance.iter_flows():
            c = self.flow_completion_time((i, j), size=flow.size)
            completions[i] = max(completions.get(i, 0.0), c)
        return completions

    def weighted_completion_time(self, instance: CoflowInstance) -> float:
        """Objective (1): weighted sum of coflow completion times."""
        completions = self.coflow_completion_times(instance)
        return float(
            sum(instance[i].weight * completions[i] for i in completions)
        )

    def makespan(self, instance: CoflowInstance) -> float:
        """Completion time of the last flow in the schedule."""
        completions = self.coflow_completion_times(instance)
        return max(completions.values()) if completions else 0.0

    # ------------------------------------------------------------- validation
    def validate(
        self,
        instance: CoflowInstance,
        network: Network,
        tolerance: float = 1e-6,
    ) -> None:
        """Raise :class:`ScheduleError` unless the schedule is feasible.

        Checks performed:

        1. every flow in the instance has a path and the path exists in the
           network and connects its endpoints;
        2. every flow delivers at least its size;
        3. no segment starts before the flow's release time;
        4. at every point in time the total rate crossing each edge is within
           its capacity (checked at every segment-boundary event).
        """
        # 1-3: per-flow checks.
        for i, j, flow in instance.iter_flows():
            fid = (i, j)
            if fid not in self._paths:
                raise ScheduleError(f"flow {fid} missing from schedule")
            path = self._paths[fid]
            if path[0] != flow.source or path[-1] != flow.destination:
                raise ScheduleError(
                    f"flow {fid}: scheduled path endpoints {path[0]}->{path[-1]} "
                    f"do not match flow {flow.source}->{flow.destination}"
                )
            network.validate_path(path)
            delivered = self.delivered_volume(fid)
            if delivered + tolerance < flow.size:
                raise ScheduleError(
                    f"flow {fid} delivers {delivered:.6f} < size {flow.size}"
                )
            segs = self._segments.get(fid, [])
            if flow.size > 0 and not segs:
                raise ScheduleError(f"flow {fid} has positive size but no segments")
            for seg in segs:
                if seg.start + tolerance < flow.release_time:
                    raise ScheduleError(
                        f"flow {fid} starts at {seg.start} before release "
                        f"time {flow.release_time}"
                    )

        # 4: capacity check with a sweep over segment-boundary events.
        self._validate_capacities(instance, network, tolerance)

    def _validate_capacities(
        self, instance: CoflowInstance, network: Network, tolerance: float
    ) -> None:
        # Collect per-edge piecewise-constant load changes.
        events: Dict[Tuple[object, object], List[Tuple[float, float]]] = {}
        for i, j, _flow in instance.iter_flows():
            fid = (i, j)
            path = self._paths.get(fid)
            if path is None:
                continue
            for edge in path_edges(path):
                for seg in self._segments.get(fid, []):
                    events.setdefault(edge, []).append((seg.start, seg.rate))
                    events.setdefault(edge, []).append((seg.end, -seg.rate))
        for edge, changes in events.items():
            capacity = network.capacity(*edge)
            changes.sort()
            load = 0.0
            idx = 0
            n = len(changes)
            while idx < n:
                t = changes[idx][0]
                while idx < n and abs(changes[idx][0] - t) < 1e-12:
                    load += changes[idx][1]
                    idx += 1
                if load > capacity * (1.0 + tolerance) + tolerance:
                    raise ScheduleError(
                        f"edge {edge} overloaded at time {t:.6f}: "
                        f"load {load:.6f} > capacity {capacity:.6f}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nseg = sum(len(s) for s in self._segments.values())
        return f"CircuitSchedule(flows={len(self._paths)}, segments={nseg})"


# --------------------------------------------------------------------------
# Packet schedules
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class PacketMove:
    """One hop of a packet: crossing ``edge`` during discrete step ``time``."""

    time: int
    edge: Tuple[object, object]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("move time must be non-negative")
        if len(self.edge) != 2 or self.edge[0] == self.edge[1]:
            raise ValueError(f"invalid edge {self.edge!r}")


class PacketSchedule:
    """A discrete-time store-and-forward packet schedule."""

    def __init__(self) -> None:
        self._moves: Dict[FlowId, List[PacketMove]] = {}

    # ------------------------------------------------------------------ build
    def add_move(self, fid: FlowId, time: int, u: object, v: object) -> None:
        """Record that packet ``fid`` crosses ``u -> v`` during step ``time``."""
        self._moves.setdefault(fid, []).append(PacketMove(time=int(time), edge=(u, v)))
        self._moves[fid].sort(key=lambda m: m.time)

    def set_route(
        self, fid: FlowId, path: Sequence[object], departure_times: Sequence[int]
    ) -> None:
        """Record a whole route at once.

        ``departure_times[k]`` is the step during which the packet crosses the
        k-th edge of ``path``.
        """
        edges = path_edges(path)
        if len(edges) != len(departure_times):
            raise ScheduleError(
                "departure_times must have one entry per edge of the path"
            )
        self._moves[fid] = [
            PacketMove(time=int(t), edge=e) for t, e in zip(departure_times, edges)
        ]
        self._moves[fid].sort(key=lambda m: m.time)

    # -------------------------------------------------------------- accessors
    def flow_ids(self) -> List[FlowId]:
        return sorted(self._moves.keys())

    def moves(self, fid: FlowId) -> List[PacketMove]:
        return list(self._moves.get(fid, []))

    def route(self, fid: FlowId) -> List[object]:
        """The node path traversed by the packet (in move order)."""
        moves = self._moves.get(fid, [])
        if not moves:
            return []
        nodes = [moves[0].edge[0]]
        for move in moves:
            nodes.append(move.edge[1])
        return nodes

    def packet_completion_time(self, fid: FlowId) -> int:
        """Arrival step of the packet (last move time + 1)."""
        moves = self._moves.get(fid, [])
        if not moves:
            raise ScheduleError(f"packet {fid} has no moves")
        return moves[-1].time + 1

    def coflow_completion_times(self, instance: CoflowInstance) -> Dict[int, int]:
        completions: Dict[int, int] = {}
        for i, j, _flow in instance.iter_flows():
            c = self.packet_completion_time((i, j))
            completions[i] = max(completions.get(i, 0), c)
        return completions

    def weighted_completion_time(self, instance: CoflowInstance) -> float:
        completions = self.coflow_completion_times(instance)
        return float(sum(instance[i].weight * completions[i] for i in completions))

    def makespan(self) -> int:
        """Largest arrival time over all packets in the schedule."""
        if not self._moves:
            return 0
        return max(self.packet_completion_time(fid) for fid in self._moves)

    # ------------------------------------------------------------- validation
    def validate(self, instance: CoflowInstance, network: Network) -> None:
        """Raise :class:`ScheduleError` unless the packet schedule is feasible.

        Checks: every packet has moves forming a chained path from its source
        to its destination using edges of the network, starting no earlier
        than its release time, with strictly increasing move times; and no
        edge is used by two packets in the same time step.
        """
        edge_usage: Dict[Tuple[int, Tuple[object, object]], FlowId] = {}
        for i, j, flow in instance.iter_flows():
            fid = (i, j)
            moves = self._moves.get(fid)
            if not moves:
                raise ScheduleError(f"packet {fid} missing from schedule")
            if moves[0].edge[0] != flow.source:
                raise ScheduleError(
                    f"packet {fid} starts at {moves[0].edge[0]!r}, "
                    f"expected source {flow.source!r}"
                )
            if moves[-1].edge[1] != flow.destination:
                raise ScheduleError(
                    f"packet {fid} ends at {moves[-1].edge[1]!r}, "
                    f"expected destination {flow.destination!r}"
                )
            if moves[0].time < flow.release_time:
                raise ScheduleError(
                    f"packet {fid} moves at step {moves[0].time} before its "
                    f"release time {flow.release_time}"
                )
            prev = None
            for move in moves:
                u, v = move.edge
                if not network.has_edge(u, v):
                    raise ScheduleError(
                        f"packet {fid} uses missing edge {(u, v)!r}"
                    )
                if prev is not None:
                    if move.time <= prev.time:
                        raise ScheduleError(
                            f"packet {fid} has non-increasing move times "
                            f"({prev.time} then {move.time})"
                        )
                    if prev.edge[1] != u:
                        raise ScheduleError(
                            f"packet {fid} teleports from {prev.edge[1]!r} to {u!r}"
                        )
                key = (move.time, move.edge)
                if key in edge_usage:
                    raise ScheduleError(
                        f"edge {move.edge!r} used by packets {edge_usage[key]} and "
                        f"{fid} in the same step {move.time}"
                    )
                edge_usage[key] = fid
                prev = move

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nmoves = sum(len(m) for m in self._moves.values())
        return f"PacketSchedule(packets={len(self._moves)}, moves={nmoves})"
