"""Capacitated directed network substrate.

The paper models the datacenter fabric as a directed graph ``G = (V, E)``
with an edge capacity ``c(e)`` for every edge (Section 1.1).  This module
provides :class:`Network`, a thin, validated wrapper over
:class:`networkx.DiGraph` with the operations every algorithm in the
repository needs:

* capacity lookups and aggregate statistics,
* shortest paths and *candidate path* enumeration (all equal-length simple
  shortest paths, used by the column/path LP formulation of Section 2.2),
* bottleneck ("thickest path") queries used by the flow-decomposition routine
  of Section 4.2,
* deterministic edge indexing so LP variables can be laid out in arrays.

Nodes may be arbitrary hashable objects (the fat-tree builder uses structured
string names such as ``"host_3"`` and ``"edge_1_0"``).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = ["Network", "Edge", "path_edges"]

Node = Hashable
Edge = Tuple[Node, Node]


def path_edges(path: Sequence[Node]) -> List[Edge]:
    """Return the list of directed edges traversed by a node path."""
    if len(path) < 2:
        return []
    return list(zip(path[:-1], path[1:]))


class Network:
    """A directed, capacitated network.

    Parameters
    ----------
    graph:
        Optional prebuilt :class:`networkx.DiGraph`.  Edge capacities are read
        from the ``"capacity"`` edge attribute (missing attributes default to
        ``default_capacity``).
    default_capacity:
        Capacity assigned to edges added without an explicit capacity.
    """

    def __init__(
        self,
        graph: Optional[nx.DiGraph] = None,
        default_capacity: float = 1.0,
    ) -> None:
        if default_capacity <= 0:
            raise ValueError("default capacity must be positive")
        self.default_capacity = float(default_capacity)
        self._graph = nx.DiGraph()
        if graph is not None:
            for node in graph.nodes:
                self._graph.add_node(node)
            for u, v, data in graph.edges(data=True):
                cap = float(data.get("capacity", default_capacity))
                self.add_edge(u, v, capacity=cap)
        self._edge_index_cache: Optional[Dict[Edge, int]] = None

    # ------------------------------------------------------------------ build
    def add_node(self, node: Node) -> None:
        """Add an isolated node."""
        self._graph.add_node(node)
        self._edge_index_cache = None

    def add_edge(self, u: Node, v: Node, capacity: Optional[float] = None) -> None:
        """Add the directed edge ``u -> v`` with the given capacity."""
        if u == v:
            raise ValueError(f"self-loop edges are not allowed: {u!r}")
        cap = self.default_capacity if capacity is None else float(capacity)
        if cap <= 0:
            raise ValueError(f"edge capacity must be positive, got {cap}")
        self._graph.add_edge(u, v, capacity=cap)
        self._edge_index_cache = None

    def add_bidirectional_edge(
        self, u: Node, v: Node, capacity: Optional[float] = None
    ) -> None:
        """Add both ``u -> v`` and ``v -> u`` with the same capacity."""
        self.add_edge(u, v, capacity=capacity)
        self.add_edge(v, u, capacity=capacity)

    # -------------------------------------------------------------- accessors
    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph (treat as read-only)."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def nodes(self) -> List[Node]:
        return list(self._graph.nodes)

    def edges(self) -> List[Edge]:
        return list(self._graph.edges)

    def has_node(self, node: Node) -> bool:
        return self._graph.has_node(node)

    def has_edge(self, u: Node, v: Node) -> bool:
        return self._graph.has_edge(u, v)

    def capacity(self, u: Node, v: Node) -> float:
        """Capacity of the directed edge ``u -> v``."""
        try:
            return float(self._graph[u][v]["capacity"])
        except KeyError as exc:
            raise KeyError(f"edge {(u, v)!r} is not in the network") from exc

    def capacities(self) -> Dict[Edge, float]:
        """Map every edge to its capacity."""
        return {
            (u, v): float(data["capacity"])
            for u, v, data in self._graph.edges(data=True)
        }

    def min_capacity(self) -> float:
        """Smallest edge capacity in the network."""
        caps = [float(d["capacity"]) for _, _, d in self._graph.edges(data=True)]
        if not caps:
            raise ValueError("network has no edges")
        return min(caps)

    def out_edges(self, node: Node) -> List[Edge]:
        return list(self._graph.out_edges(node))

    def in_edges(self, node: Node) -> List[Edge]:
        return list(self._graph.in_edges(node))

    def incident_edges(self, node: Node) -> List[Edge]:
        """All edges touching ``node`` (in either direction)."""
        return self.in_edges(node) + self.out_edges(node)

    def edge_index(self) -> Dict[Edge, int]:
        """Deterministic ``edge -> column index`` mapping for LP layouts."""
        if self._edge_index_cache is None:
            self._edge_index_cache = {
                e: i for i, e in enumerate(sorted(self._graph.edges, key=repr))
            }
        return self._edge_index_cache

    # ------------------------------------------------------------------ paths
    def shortest_path(self, source: Node, target: Node) -> List[Node]:
        """An unweighted (hop-count) shortest path from source to target."""
        try:
            return nx.shortest_path(self._graph, source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ValueError(
                f"no path from {source!r} to {target!r} in the network"
            ) from exc

    def shortest_path_length(self, source: Node, target: Node) -> int:
        """Number of hops on a shortest path from source to target."""
        return len(self.shortest_path(source, target)) - 1

    def all_shortest_paths(
        self, source: Node, target: Node, limit: Optional[int] = None
    ) -> List[List[Node]]:
        """All hop-count shortest paths between two nodes.

        ``limit`` truncates the enumeration (the fat-tree has at most
        ``(k/2)^2`` equal-cost paths, so the default unlimited enumeration is
        safe for the topologies shipped here, but arbitrary graphs may have
        exponentially many shortest paths).
        """
        try:
            gen = nx.all_shortest_paths(self._graph, source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ValueError(
                f"no path from {source!r} to {target!r} in the network"
            ) from exc
        if limit is None:
            return [list(p) for p in gen]
        return [list(p) for p in itertools.islice(gen, limit)]

    def k_shortest_paths(self, source: Node, target: Node, k: int) -> List[List[Node]]:
        """The ``k`` shortest simple paths (by hop count), for candidate sets."""
        if k <= 0:
            raise ValueError("k must be positive")
        try:
            gen = nx.shortest_simple_paths(self._graph, source, target)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ValueError(
                f"no path from {source!r} to {target!r} in the network"
            ) from exc
        return [list(p) for p in itertools.islice(gen, k)]

    def candidate_paths(
        self,
        source: Node,
        target: Node,
        max_paths: int = 16,
        stretch: int = 0,
    ) -> List[List[Node]]:
        """Candidate path set used by the path-based LP formulation.

        Returns up to ``max_paths`` simple paths whose length is within
        ``stretch`` hops of the shortest path.  With ``stretch=0`` this is the
        set of equal-cost shortest paths (ECMP set), which on a fat-tree is
        exactly the set the paper's flow decomposition ends up using.
        """
        shortest = self.shortest_path_length(source, target)
        paths: List[List[Node]] = []
        for path in nx.shortest_simple_paths(self._graph, source, target):
            if len(path) - 1 > shortest + stretch:
                break
            paths.append(list(path))
            if len(paths) >= max_paths:
                break
        return paths

    def bottleneck_capacity(self, path: Sequence[Node]) -> float:
        """Minimum edge capacity along a path (``c_m`` in Lemma 2)."""
        edges = path_edges(path)
        if not edges:
            raise ValueError("path must contain at least one edge")
        return min(self.capacity(u, v) for u, v in edges)

    def widest_path(self, source: Node, target: Node) -> List[Node]:
        """Maximum-bottleneck ("thickest") path from source to target.

        This is the Dijkstra variant referenced in Section 4.2 of the paper:
        it maximises the minimum residual capacity along the path and is the
        path-selection rule inside the flow-decomposition routine.
        """
        import heapq

        if not self.has_node(source) or not self.has_node(target):
            raise ValueError("source or target not in network")
        # Max-bottleneck Dijkstra: negate widths so heapq's min-heap pops the
        # widest frontier node first.
        best_width: Dict[Node, float] = {source: float("inf")}
        parent: Dict[Node, Node] = {}
        heap: List[Tuple[float, int, Node]] = [(-float("inf"), 0, source)]
        counter = 1
        visited = set()
        while heap:
            neg_width, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                break
            width = -neg_width
            for _, nxt in self._graph.out_edges(node):
                if nxt in visited:
                    continue
                cand = min(width, self.capacity(node, nxt))
                if cand > best_width.get(nxt, 0.0):
                    best_width[nxt] = cand
                    parent[nxt] = node
                    heapq.heappush(heap, (-cand, counter, nxt))
                    counter += 1
        if target not in best_width:
            raise ValueError(f"no path from {source!r} to {target!r} in the network")
        # Reconstruct.
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    # -------------------------------------------------------------- utilities
    def validate_path(self, path: Sequence[Node]) -> None:
        """Raise ``ValueError`` unless every consecutive pair is an edge."""
        if len(path) < 2:
            raise ValueError("path must contain at least two nodes")
        for u, v in path_edges(path):
            if not self.has_edge(u, v):
                raise ValueError(f"path uses missing edge {(u, v)!r}")

    def fingerprint(self) -> str:
        """Stable content digest of the topology (nodes, edges, capacities).

        Two :class:`Network` objects with the same node set and the same
        capacitated edge set produce the same fingerprint regardless of
        insertion order.  The experiment engine's run store uses this to key
        cached results by topology.
        """
        hasher = hashlib.sha256()
        for node in sorted(self._graph.nodes, key=repr):
            hasher.update(repr(node).encode())
            hasher.update(b"\x00")
        for (u, v), cap in sorted(self.capacities().items(), key=lambda kv: repr(kv[0])):
            hasher.update(f"{u!r}->{v!r}:{cap!r}".encode())
            hasher.update(b"\x00")
        return hasher.hexdigest()[:16]

    def copy(self) -> "Network":
        """Deep copy of the network."""
        return Network(self._graph.copy(), default_capacity=self.default_capacity)

    def scaled_capacities(self, factor: float) -> "Network":
        """Return a copy with every capacity multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("capacity scale factor must be positive")
        net = Network(default_capacity=self.default_capacity * factor)
        for node in self.nodes():
            net.add_node(node)
        for (u, v), cap in self.capacities().items():
            net.add_edge(u, v, capacity=cap * factor)
        return net

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(nodes={self.num_nodes}, edges={self.num_edges})"
