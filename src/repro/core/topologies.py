"""Network topology builders.

The paper evaluates circuit-based coflow scheduling on a 128-server fat-tree
with 1 Gb/s links (Section 4.1) and motivates the models with a triangle
example (Figure 1).  This module builds those topologies plus the standard
structures used throughout the test-suite and the extension modules:

* :func:`fat_tree` — the k-ary fat-tree of Al-Fares et al. (k^3/4 hosts),
* :func:`triangle` — the three-node example network of Figure 1,
* :func:`nonblocking_switch` — the big-switch abstraction used by the Varys
  line of work (every host pair connected through a single crossbar node),
* :func:`line`, :func:`ring`, :func:`star`, :func:`tree` — simple families,
* :func:`random_graph` — capacitated Erdős–Rényi style topologies for
  property-based tests.

All builders return :class:`repro.core.network.Network` objects with
bidirectional (two directed edges) links, matching the paper's model of
full-duplex datacenter links.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .network import Network

__all__ = [
    "fat_tree",
    "fat_tree_hosts",
    "triangle",
    "nonblocking_switch",
    "line",
    "ring",
    "star",
    "tree",
    "random_graph",
    "host_nodes",
]

#: Default link capacity, interpreted as 1 Gb/s expressed in Gb/s.
DEFAULT_LINK_CAPACITY = 1.0


def host_nodes(network: Network) -> List[str]:
    """Return the host (server) nodes of a topology built by this module.

    Topology builders tag servers with names starting with ``"host"``; this
    helper recovers them so workload generators can draw endpoints.
    """
    return sorted(
        n for n in network.nodes() if isinstance(n, str) and n.startswith("host")
    )


def fat_tree(k: int = 4, link_capacity: float = DEFAULT_LINK_CAPACITY) -> Network:
    """Build a k-ary fat-tree.

    The fat-tree has ``k`` pods; each pod contains ``k/2`` edge switches and
    ``k/2`` aggregation switches; each edge switch connects ``k/2`` hosts.
    There are ``(k/2)^2`` core switches.  Total hosts: ``k^3 / 4``.  The
    paper's 128-server testbed corresponds to ``k = 8``.

    Node naming scheme:

    * hosts:      ``host_{index}``
    * edge sw.:   ``edge_{pod}_{i}``
    * agg sw.:    ``agg_{pod}_{i}``
    * core sw.:   ``core_{i}_{j}`` for ``i, j in range(k/2)``

    Every link is added in both directions with capacity ``link_capacity``.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree arity k must be an even integer >= 2, got {k}")
    if link_capacity <= 0:
        raise ValueError("link capacity must be positive")

    half = k // 2
    net = Network(default_capacity=link_capacity)

    host_id = 0
    for pod in range(k):
        for e in range(half):
            edge_sw = f"edge_{pod}_{e}"
            for _ in range(half):
                host = f"host_{host_id}"
                net.add_bidirectional_edge(host, edge_sw, capacity=link_capacity)
                host_id += 1
            for a in range(half):
                agg_sw = f"agg_{pod}_{a}"
                net.add_bidirectional_edge(edge_sw, agg_sw, capacity=link_capacity)
        for a in range(half):
            agg_sw = f"agg_{pod}_{a}"
            for c in range(half):
                core_sw = f"core_{a}_{c}"
                net.add_bidirectional_edge(agg_sw, core_sw, capacity=link_capacity)
    return net


def fat_tree_hosts(k: int) -> int:
    """Number of hosts in a k-ary fat-tree (``k^3/4``)."""
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree arity k must be an even integer >= 2, got {k}")
    return k**3 // 4


def triangle(capacity: float = 1.0) -> Network:
    """The three-node unit-capacity triangle of Figure 1.

    Nodes are ``"x"``, ``"y"``, ``"z"``; every ordered pair is connected by a
    directed edge of the given capacity (the figure's undirected unit-capacity
    triangle, made bidirectional).
    """
    net = Network(default_capacity=capacity)
    for u, v in [("x", "y"), ("y", "z"), ("z", "x")]:
        net.add_bidirectional_edge(u, v, capacity=capacity)
    return net


def nonblocking_switch(
    num_hosts: int, port_capacity: float = DEFAULT_LINK_CAPACITY
) -> Network:
    """A non-blocking switch connecting ``num_hosts`` servers.

    Each host ``host_i`` has an uplink to and a downlink from the single
    crossbar node ``"switch"``.  Because every host pair has a unique path
    (host -> switch -> host), this topology is an instance of the
    "paths given" circuit model, as observed in Section 2 of the paper.
    """
    if num_hosts < 2:
        raise ValueError("a switch needs at least two hosts")
    net = Network(default_capacity=port_capacity)
    for i in range(num_hosts):
        host = f"host_{i}"
        net.add_edge(host, "switch", capacity=port_capacity)
        net.add_edge("switch", host, capacity=port_capacity)
    return net


def line(num_nodes: int, capacity: float = 1.0) -> Network:
    """A bidirectional path graph ``host_0 - host_1 - ... - host_{n-1}``."""
    if num_nodes < 2:
        raise ValueError("a line needs at least two nodes")
    net = Network(default_capacity=capacity)
    for i in range(num_nodes - 1):
        net.add_bidirectional_edge(f"host_{i}", f"host_{i + 1}", capacity=capacity)
    return net


def ring(num_nodes: int, capacity: float = 1.0) -> Network:
    """A bidirectional cycle on ``num_nodes`` hosts."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least three nodes")
    net = Network(default_capacity=capacity)
    for i in range(num_nodes):
        net.add_bidirectional_edge(
            f"host_{i}", f"host_{(i + 1) % num_nodes}", capacity=capacity
        )
    return net


def star(num_leaves: int, capacity: float = 1.0) -> Network:
    """A star: ``num_leaves`` hosts around a central switch node."""
    if num_leaves < 2:
        raise ValueError("a star needs at least two leaves")
    net = Network(default_capacity=capacity)
    for i in range(num_leaves):
        net.add_bidirectional_edge(f"host_{i}", "switch", capacity=capacity)
    return net


def tree(
    depth: int, fanout: int, capacity: float = 1.0, host_leaves: bool = True
) -> Network:
    """A complete ``fanout``-ary tree of the given depth.

    Internal nodes are named ``sw_{level}_{index}``; leaves are hosts when
    ``host_leaves`` is set.  Trees have unique paths between node pairs, so
    they exercise the "paths given" circuit algorithms.
    """
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be at least 1")
    net = Network(default_capacity=capacity)
    # level -> list of node names
    levels: List[List[str]] = [["sw_0_0"]]
    for lvl in range(1, depth + 1):
        prev = levels[-1]
        cur: List[str] = []
        for pi, parent in enumerate(prev):
            for f in range(fanout):
                idx = pi * fanout + f
                if lvl == depth and host_leaves:
                    node = f"host_{idx}"
                else:
                    node = f"sw_{lvl}_{idx}"
                net.add_bidirectional_edge(parent, node, capacity=capacity)
                cur.append(node)
        levels.append(cur)
    return net


def random_graph(
    num_nodes: int,
    edge_probability: float = 0.3,
    capacity_range: Tuple[float, float] = (1.0, 4.0),
    seed: Optional[int] = None,
    ensure_connected: bool = True,
) -> Network:
    """A random capacitated topology for tests.

    Starts from a Hamiltonian cycle over the hosts (when ``ensure_connected``)
    so every source/destination pair admits a path, then adds each remaining
    ordered pair independently with probability ``edge_probability``.
    Capacities are drawn uniformly from ``capacity_range``.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError("edge probability must lie in [0, 1]")
    lo, hi = capacity_range
    if lo <= 0 or hi < lo:
        raise ValueError("capacity range must be positive and ordered")
    rng = random.Random(seed)
    net = Network(default_capacity=lo)
    names = [f"host_{i}" for i in range(num_nodes)]
    if ensure_connected:
        for i in range(num_nodes):
            cap = rng.uniform(lo, hi)
            net.add_bidirectional_edge(
                names[i], names[(i + 1) % num_nodes], capacity=cap
            )
    for u in names:
        for v in names:
            if u == v or net.has_edge(u, v):
                continue
            if rng.random() < edge_probability:
                net.add_edge(u, v, capacity=rng.uniform(lo, hi))
    return net
