"""Network topology builders.

The paper evaluates circuit-based coflow scheduling on a 128-server fat-tree
with 1 Gb/s links (Section 4.1) and motivates the models with a triangle
example (Figure 1).  This module builds those topologies plus the standard
structures used throughout the test-suite and the extension modules:

* :func:`fat_tree` — the k-ary fat-tree of Al-Fares et al. (k^3/4 hosts),
  optionally oversubscribed at the edge/aggregation uplinks,
* :func:`leaf_spine` — the two-tier Clos fabric of modern datacenters,
* :func:`random_regular` — a jellyfish-style random regular switch fabric,
* :func:`triangle` — the three-node example network of Figure 1,
* :func:`nonblocking_switch` — the big-switch abstraction used by the Varys
  line of work (every host pair connected through a single crossbar node),
* :func:`line`, :func:`ring`, :func:`star`, :func:`tree` — simple families,
* :func:`random_graph` — capacitated Erdős–Rényi style topologies for
  property-based tests.

All builders return :class:`repro.core.network.Network` objects with
bidirectional (two directed edges) links, matching the paper's model of
full-duplex datacenter links.

Every named builder is also reachable by a compact *spec string* through
:func:`from_spec` (e.g. ``"fat_tree(k=4, oversubscription=2)"``), which is
how :class:`repro.workloads.generator.WorkloadConfig` and the experiment
engine's run store refer to topologies declaratively.
"""

from __future__ import annotations

import math
import random
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .network import Network

__all__ = [
    "fat_tree",
    "fat_tree_hosts",
    "leaf_spine",
    "random_regular",
    "triangle",
    "nonblocking_switch",
    "line",
    "ring",
    "star",
    "tree",
    "random_graph",
    "host_nodes",
    "from_spec",
    "TOPOLOGY_BUILDERS",
]

#: Default link capacity, interpreted as 1 Gb/s expressed in Gb/s.
DEFAULT_LINK_CAPACITY = 1.0


def host_nodes(network: Network) -> List[str]:
    """Return the host (server) nodes of a topology built by this module.

    Topology builders tag servers with names starting with ``"host"``; this
    helper recovers them so workload generators can draw endpoints.
    """
    return sorted(
        n for n in network.nodes() if isinstance(n, str) and n.startswith("host")
    )


def fat_tree(
    k: int = 4,
    link_capacity: float = DEFAULT_LINK_CAPACITY,
    oversubscription: float = 1.0,
) -> Network:
    """Build a k-ary fat-tree.

    The fat-tree has ``k`` pods; each pod contains ``k/2`` edge switches and
    ``k/2`` aggregation switches; each edge switch connects ``k/2`` hosts.
    There are ``(k/2)^2`` core switches.  Total hosts: ``k^3 / 4``.  The
    paper's 128-server testbed corresponds to ``k = 8``.

    Node naming scheme:

    * hosts:      ``host_{index}``
    * edge sw.:   ``edge_{pod}_{i}``
    * agg sw.:    ``agg_{pod}_{i}``
    * core sw.:   ``core_{i}_{j}`` for ``i, j in range(k/2)``

    Every link is added in both directions.  Host links always have capacity
    ``link_capacity``; switch-to-switch links (edge-agg and agg-core) have
    capacity ``link_capacity / oversubscription``, so ``oversubscription > 1``
    models the under-provisioned cores common in production datacenters
    (``1`` is the paper's full-bisection fabric).
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree arity k must be an even integer >= 2, got {k}")
    if link_capacity <= 0:
        raise ValueError("link capacity must be positive")
    if oversubscription < 1.0:
        raise ValueError("oversubscription ratio must be at least 1")

    half = k // 2
    uplink_capacity = link_capacity / oversubscription
    net = Network(default_capacity=link_capacity)

    host_id = 0
    for pod in range(k):
        for e in range(half):
            edge_sw = f"edge_{pod}_{e}"
            for _ in range(half):
                host = f"host_{host_id}"
                net.add_bidirectional_edge(host, edge_sw, capacity=link_capacity)
                host_id += 1
            for a in range(half):
                agg_sw = f"agg_{pod}_{a}"
                net.add_bidirectional_edge(edge_sw, agg_sw, capacity=uplink_capacity)
        for a in range(half):
            agg_sw = f"agg_{pod}_{a}"
            for c in range(half):
                core_sw = f"core_{a}_{c}"
                net.add_bidirectional_edge(agg_sw, core_sw, capacity=uplink_capacity)
    return net


def fat_tree_hosts(k: int) -> int:
    """Number of hosts in a k-ary fat-tree (``k^3/4``)."""
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree arity k must be an even integer >= 2, got {k}")
    return k**3 // 4


def leaf_spine(
    num_leaves: int = 4,
    num_spines: int = 2,
    hosts_per_leaf: int = 4,
    link_capacity: float = DEFAULT_LINK_CAPACITY,
    uplink_capacity: Optional[float] = None,
) -> Network:
    """A two-tier leaf-spine (folded Clos) fabric.

    Every host connects to exactly one leaf switch; every leaf connects to
    every spine.  This is the dominant modern datacenter fabric and — unlike
    the fat-tree — has exactly ``num_spines`` equal-length core paths between
    hosts under different leaves, which stresses the routing side of the
    paper's algorithm.

    Node naming scheme: ``host_{i}``, ``leaf_{l}``, ``spine_{s}``.  Host
    links have capacity ``link_capacity``; leaf-spine links default to the
    same (full bisection when ``num_spines * uplink >= hosts_per_leaf *
    link_capacity``) and can be set independently via ``uplink_capacity``.
    """
    if num_leaves < 2:
        raise ValueError("a leaf-spine fabric needs at least two leaves")
    if num_spines < 1:
        raise ValueError("a leaf-spine fabric needs at least one spine")
    if hosts_per_leaf < 1:
        raise ValueError("each leaf needs at least one host")
    if link_capacity <= 0:
        raise ValueError("link capacity must be positive")
    uplink = link_capacity if uplink_capacity is None else float(uplink_capacity)
    if uplink <= 0:
        raise ValueError("uplink capacity must be positive")

    net = Network(default_capacity=link_capacity)
    host_id = 0
    for leaf in range(num_leaves):
        leaf_sw = f"leaf_{leaf}"
        for _ in range(hosts_per_leaf):
            net.add_bidirectional_edge(f"host_{host_id}", leaf_sw, capacity=link_capacity)
            host_id += 1
        for spine in range(num_spines):
            net.add_bidirectional_edge(leaf_sw, f"spine_{spine}", capacity=uplink)
    return net


def random_regular(
    num_switches: int = 8,
    degree: int = 3,
    hosts_per_switch: int = 2,
    link_capacity: float = DEFAULT_LINK_CAPACITY,
    seed: Optional[int] = 0,
) -> Network:
    """A jellyfish-style fabric: a random regular graph of switches.

    Following the Jellyfish proposal (Singla et al., NSDI'12), the switch
    layer is a uniformly random ``degree``-regular graph (``num_switches *
    degree`` must be even) and each switch additionally serves
    ``hosts_per_switch`` hosts.  Random regular graphs have near-optimal
    expansion, so path diversity is high but paths are irregular — the
    opposite regime from the symmetric fat-tree.

    Node naming scheme: ``host_{i}``, ``sw_{s}``.  All links are
    bidirectional with capacity ``link_capacity``.
    """
    if num_switches < 2:
        raise ValueError("need at least two switches")
    if not (0 < degree < num_switches):
        raise ValueError("switch degree must be in (0, num_switches)")
    if (num_switches * degree) % 2 != 0:
        raise ValueError("num_switches * degree must be even for a regular graph")
    if hosts_per_switch < 1:
        raise ValueError("each switch needs at least one host")
    if link_capacity <= 0:
        raise ValueError("link capacity must be positive")

    fabric = nx.random_regular_graph(degree, num_switches, seed=seed)
    net = Network(default_capacity=link_capacity)
    host_id = 0
    for sw in range(num_switches):
        for _ in range(hosts_per_switch):
            net.add_bidirectional_edge(f"host_{host_id}", f"sw_{sw}", capacity=link_capacity)
            host_id += 1
    for u, v in sorted(fabric.edges()):
        net.add_bidirectional_edge(f"sw_{u}", f"sw_{v}", capacity=link_capacity)
    return net


def triangle(capacity: float = 1.0) -> Network:
    """The three-node unit-capacity triangle of Figure 1.

    Nodes are ``"x"``, ``"y"``, ``"z"``; every ordered pair is connected by a
    directed edge of the given capacity (the figure's undirected unit-capacity
    triangle, made bidirectional).
    """
    net = Network(default_capacity=capacity)
    for u, v in [("x", "y"), ("y", "z"), ("z", "x")]:
        net.add_bidirectional_edge(u, v, capacity=capacity)
    return net


def nonblocking_switch(
    num_hosts: int, port_capacity: float = DEFAULT_LINK_CAPACITY
) -> Network:
    """A non-blocking switch connecting ``num_hosts`` servers.

    Each host ``host_i`` has an uplink to and a downlink from the single
    crossbar node ``"switch"``.  Because every host pair has a unique path
    (host -> switch -> host), this topology is an instance of the
    "paths given" circuit model, as observed in Section 2 of the paper.
    """
    if num_hosts < 2:
        raise ValueError("a switch needs at least two hosts")
    net = Network(default_capacity=port_capacity)
    for i in range(num_hosts):
        host = f"host_{i}"
        net.add_edge(host, "switch", capacity=port_capacity)
        net.add_edge("switch", host, capacity=port_capacity)
    return net


def line(num_nodes: int, capacity: float = 1.0) -> Network:
    """A bidirectional path graph ``host_0 - host_1 - ... - host_{n-1}``."""
    if num_nodes < 2:
        raise ValueError("a line needs at least two nodes")
    net = Network(default_capacity=capacity)
    for i in range(num_nodes - 1):
        net.add_bidirectional_edge(f"host_{i}", f"host_{i + 1}", capacity=capacity)
    return net


def ring(num_nodes: int, capacity: float = 1.0) -> Network:
    """A bidirectional cycle on ``num_nodes`` hosts."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least three nodes")
    net = Network(default_capacity=capacity)
    for i in range(num_nodes):
        net.add_bidirectional_edge(
            f"host_{i}", f"host_{(i + 1) % num_nodes}", capacity=capacity
        )
    return net


def star(num_leaves: int, capacity: float = 1.0) -> Network:
    """A star: ``num_leaves`` hosts around a central switch node."""
    if num_leaves < 2:
        raise ValueError("a star needs at least two leaves")
    net = Network(default_capacity=capacity)
    for i in range(num_leaves):
        net.add_bidirectional_edge(f"host_{i}", "switch", capacity=capacity)
    return net


def tree(
    depth: int, fanout: int, capacity: float = 1.0, host_leaves: bool = True
) -> Network:
    """A complete ``fanout``-ary tree of the given depth.

    Internal nodes are named ``sw_{level}_{index}``; leaves are hosts when
    ``host_leaves`` is set.  Trees have unique paths between node pairs, so
    they exercise the "paths given" circuit algorithms.
    """
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be at least 1")
    net = Network(default_capacity=capacity)
    # level -> list of node names
    levels: List[List[str]] = [["sw_0_0"]]
    for lvl in range(1, depth + 1):
        prev = levels[-1]
        cur: List[str] = []
        for pi, parent in enumerate(prev):
            for f in range(fanout):
                idx = pi * fanout + f
                if lvl == depth and host_leaves:
                    node = f"host_{idx}"
                else:
                    node = f"sw_{lvl}_{idx}"
                net.add_bidirectional_edge(parent, node, capacity=capacity)
                cur.append(node)
        levels.append(cur)
    return net


def random_graph(
    num_nodes: int,
    edge_probability: float = 0.3,
    capacity_range: Tuple[float, float] = (1.0, 4.0),
    seed: Optional[int] = None,
    ensure_connected: bool = True,
) -> Network:
    """A random capacitated topology for tests.

    Starts from a Hamiltonian cycle over the hosts (when ``ensure_connected``)
    so every source/destination pair admits a path, then adds each remaining
    ordered pair independently with probability ``edge_probability``.
    Capacities are drawn uniformly from ``capacity_range``.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError("edge probability must lie in [0, 1]")
    lo, hi = capacity_range
    if lo <= 0 or hi < lo:
        raise ValueError("capacity range must be positive and ordered")
    rng = random.Random(seed)
    net = Network(default_capacity=lo)
    names = [f"host_{i}" for i in range(num_nodes)]
    if ensure_connected:
        for i in range(num_nodes):
            cap = rng.uniform(lo, hi)
            net.add_bidirectional_edge(
                names[i], names[(i + 1) % num_nodes], capacity=cap
            )
    for u in names:
        for v in names:
            if u == v or net.has_edge(u, v):
                continue
            if rng.random() < edge_probability:
                net.add_edge(u, v, capacity=rng.uniform(lo, hi))
    return net


# --------------------------------------------------------------- spec strings

#: Named builders reachable from declarative topology specs.
TOPOLOGY_BUILDERS: Dict[str, Callable[..., Network]] = {
    "fat_tree": fat_tree,
    "leaf_spine": leaf_spine,
    "random_regular": random_regular,
    "nonblocking_switch": nonblocking_switch,
    "triangle": triangle,
    "line": line,
    "ring": ring,
    "star": star,
    "tree": tree,
    "random_graph": random_graph,
}

_SPEC_RE = re.compile(r"^\s*(?P<name>[a-z_][a-z0-9_]*)\s*(?:\((?P<args>[^()]*)\))?\s*$")


def _parse_spec_value(text: str) -> object:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def from_spec(spec: str) -> Network:
    """Build a topology from a compact spec string.

    A spec is ``"name"`` or ``"name(key=value, ...)"`` where ``name`` is one
    of :data:`TOPOLOGY_BUILDERS` and values are int/float/bool/``none``
    literals (anything else is passed through as a string).  Examples::

        from_spec("fat_tree(k=4)")
        from_spec("fat_tree(k=8, oversubscription=4)")
        from_spec("leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=4)")
        from_spec("random_regular(num_switches=10, degree=3, seed=7)")

    Spec strings are how workload configs and the experiment engine's run
    store name topologies declaratively (they are hashable and JSON-safe,
    unlike :class:`Network` objects).
    """
    match = _SPEC_RE.match(spec)
    if not match:
        raise ValueError(f"malformed topology spec {spec!r}")
    name = match.group("name")
    if name not in TOPOLOGY_BUILDERS:
        known = ", ".join(sorted(TOPOLOGY_BUILDERS))
        raise ValueError(f"unknown topology {name!r} (known: {known})")
    kwargs: Dict[str, object] = {}
    args_text = match.group("args") or ""
    for part in filter(None, (p.strip() for p in args_text.split(","))):
        if "=" not in part:
            raise ValueError(
                f"topology spec arguments must be key=value pairs, got {part!r}"
            )
        key, _, value = part.partition("=")
        kwargs[key.strip()] = _parse_spec_value(value.strip())
    return TOPOLOGY_BUILDERS[name](**kwargs)
