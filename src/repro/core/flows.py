"""Coflow data model.

The paper (Section 1.1) defines a *flow* as an atomic unit of data movement
(a connection request in the circuit model, or a single packet in the packet
model), and a *coflow* as a set of flows that share a single performance
goal: the coflow completes when its last flow completes.  The scheduling
objective is the weighted sum of coflow completion times

    C = sum_k  w_k * max_{f in F_k} c_f.

Unlike previous work the paper attaches release times to individual flows
rather than to whole coflows; this module follows that convention.

The classes here are deliberately plain containers: algorithms in
:mod:`repro.circuit`, :mod:`repro.packet` and :mod:`repro.baselines` operate
on :class:`CoflowInstance` objects and never mutate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Flow",
    "Coflow",
    "CoflowInstance",
    "FlowId",
]

#: A flow is globally identified by the pair (coflow index, flow index).
FlowId = Tuple[int, int]


@dataclass(frozen=True)
class Flow:
    """A single flow: a data transfer from ``source`` to ``destination``.

    Parameters
    ----------
    source, destination:
        Node identifiers in the network the instance is scheduled on.
    size:
        Volume to transfer (:math:`\\sigma_j^i`).  In the packet model the
        size is always 1 (one packet).
    release_time:
        Earliest time the flow may start (:math:`r_j^i`), per-flow as in the
        paper.
    path:
        Optional fixed path (sequence of nodes).  When present the instance
        belongs to the "paths given" variants of the problem.
    """

    source: object
    destination: object
    size: float = 1.0
    release_time: float = 0.0
    path: Optional[Tuple[object, ...]] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"flow size must be non-negative, got {self.size}")
        if self.release_time < 0:
            raise ValueError(
                f"release time must be non-negative, got {self.release_time}"
            )
        if self.source == self.destination:
            raise ValueError(
                f"flow source and destination must differ, got {self.source!r}"
            )
        if self.path is not None:
            object.__setattr__(self, "path", tuple(self.path))
            if len(self.path) < 2:
                raise ValueError("a path must contain at least two nodes")
            if self.path[0] != self.source or self.path[-1] != self.destination:
                raise ValueError(
                    "path endpoints must match the flow's source and destination"
                )

    @property
    def has_path(self) -> bool:
        """Whether a fixed path was supplied for this flow."""
        return self.path is not None

    def with_path(self, path: Sequence[object]) -> "Flow":
        """Return a copy of this flow with ``path`` attached."""
        return Flow(
            source=self.source,
            destination=self.destination,
            size=self.size,
            release_time=self.release_time,
            path=tuple(path),
        )

    def path_edges(self) -> List[Tuple[object, object]]:
        """Return the directed edges of the attached path.

        Raises
        ------
        ValueError
            If the flow has no path.
        """
        if self.path is None:
            raise ValueError("flow has no path attached")
        return list(zip(self.path[:-1], self.path[1:]))


@dataclass(frozen=True)
class Coflow:
    """A weighted collection of flows sharing one completion goal.

    The coflow's completion time is the maximum completion time over its
    flows; the scheduling objective weights it by :attr:`weight`.
    """

    flows: Tuple[Flow, ...]
    weight: float = 1.0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "flows", tuple(self.flows))
        if not self.flows:
            raise ValueError("a coflow must contain at least one flow")
        if self.weight < 0:
            raise ValueError(f"coflow weight must be non-negative, got {self.weight}")

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    @property
    def width(self) -> int:
        """Number of flows in the coflow (the paper's "coflow width")."""
        return len(self.flows)

    @property
    def total_size(self) -> float:
        """Sum of flow sizes in the coflow."""
        return float(sum(f.size for f in self.flows))

    @property
    def release_time(self) -> float:
        """Earliest release time among the coflow's flows."""
        return min(f.release_time for f in self.flows)

    @property
    def all_paths_given(self) -> bool:
        """Whether every flow of the coflow carries a fixed path."""
        return all(f.has_path for f in self.flows)


@dataclass
class CoflowInstance:
    """A complete problem instance: a set of coflows to be scheduled.

    The instance does not reference a network; algorithms take the network
    (a :class:`repro.core.network.Network`) as a separate argument so the same
    instance can be scheduled on different topologies (the fixed-path variant
    obviously requires the paths to exist in the network used).
    """

    coflows: List[Coflow] = field(default_factory=list)
    name: Optional[str] = None

    def __post_init__(self) -> None:
        self.coflows = list(self.coflows)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.coflows)

    def __iter__(self) -> Iterator[Coflow]:
        return iter(self.coflows)

    def __getitem__(self, idx: int) -> Coflow:
        return self.coflows[idx]

    # -- derived views -------------------------------------------------------
    @property
    def num_coflows(self) -> int:
        return len(self.coflows)

    @property
    def num_flows(self) -> int:
        return sum(len(c) for c in self.coflows)

    @property
    def all_paths_given(self) -> bool:
        """True when every flow in every coflow has a fixed path."""
        return all(c.all_paths_given for c in self.coflows)

    @property
    def max_release_time(self) -> float:
        return max((f.release_time for _, _, f in self.iter_flows()), default=0.0)

    @property
    def total_volume(self) -> float:
        return float(sum(f.size for _, _, f in self.iter_flows()))

    def iter_flows(self) -> Iterator[Tuple[int, int, Flow]]:
        """Yield ``(coflow_index, flow_index, flow)`` for every flow."""
        for i, coflow in enumerate(self.coflows):
            for j, flow in enumerate(coflow.flows):
                yield i, j, flow

    def flow(self, fid: FlowId) -> Flow:
        """Look up a flow by its ``(coflow_index, flow_index)`` identifier."""
        i, j = fid
        return self.coflows[i].flows[j]

    def flow_ids(self) -> List[FlowId]:
        """All flow identifiers in deterministic order."""
        return [(i, j) for i, j, _ in self.iter_flows()]

    def weights(self) -> Dict[int, float]:
        """Map coflow index to its weight."""
        return {i: c.weight for i, c in enumerate(self.coflows)}

    def with_paths(self, paths: Dict[FlowId, Sequence[object]]) -> "CoflowInstance":
        """Return a new instance where each flow in ``paths`` gets its path.

        Flows not present in ``paths`` keep whatever path they already had.
        """
        new_coflows = []
        for i, coflow in enumerate(self.coflows):
            new_flows = []
            for j, flow in enumerate(coflow.flows):
                if (i, j) in paths:
                    new_flows.append(flow.with_path(paths[(i, j)]))
                else:
                    new_flows.append(flow)
            new_coflows.append(
                Coflow(flows=tuple(new_flows), weight=coflow.weight, name=coflow.name)
            )
        return CoflowInstance(coflows=new_coflows, name=self.name)

    def without_paths(self) -> "CoflowInstance":
        """Return a copy of the instance with all fixed paths stripped."""
        new_coflows = []
        for coflow in self.coflows:
            new_flows = [
                Flow(
                    source=f.source,
                    destination=f.destination,
                    size=f.size,
                    release_time=f.release_time,
                    path=None,
                )
                for f in coflow.flows
            ]
            new_coflows.append(
                Coflow(flows=tuple(new_flows), weight=coflow.weight, name=coflow.name)
            )
        return CoflowInstance(coflows=new_coflows, name=self.name)

    def scaled(self, size_factor: float = 1.0, weight_factor: float = 1.0) -> "CoflowInstance":
        """Return a copy with flow sizes and coflow weights scaled."""
        if size_factor <= 0 or weight_factor <= 0:
            raise ValueError("scale factors must be positive")
        new_coflows = []
        for coflow in self.coflows:
            new_flows = [
                Flow(
                    source=f.source,
                    destination=f.destination,
                    size=f.size * size_factor,
                    release_time=f.release_time,
                    path=f.path,
                )
                for f in coflow.flows
            ]
            new_coflows.append(
                Coflow(
                    flows=tuple(new_flows),
                    weight=coflow.weight * weight_factor,
                    name=coflow.name,
                )
            )
        return CoflowInstance(coflows=new_coflows, name=self.name)

    @staticmethod
    def single_coflow(flows: Iterable[Flow], weight: float = 1.0) -> "CoflowInstance":
        """Convenience constructor for makespan-style single-coflow instances."""
        return CoflowInstance(coflows=[Coflow(flows=tuple(flows), weight=weight)])
