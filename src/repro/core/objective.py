"""Objective-function helpers.

The paper's objective (equation (1)) is the weighted sum of coflow completion
times, where a coflow completes when its last flow completes.  These helpers
operate on plain ``{flow_id: completion_time}`` mappings so every scheduler
(LP-based, baselines, simulator) can share the same accounting code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .flows import CoflowInstance, FlowId

__all__ = [
    "coflow_completion_times",
    "weighted_completion_time",
    "total_completion_time",
    "makespan",
    "ObjectiveBreakdown",
    "objective_breakdown",
]


def coflow_completion_times(
    instance: CoflowInstance, flow_completions: Mapping[FlowId, float]
) -> Dict[int, float]:
    """Collapse per-flow completion times to per-coflow completion times.

    Every flow of the instance must appear in ``flow_completions``.
    """
    completions: Dict[int, float] = {}
    for i, j, _flow in instance.iter_flows():
        fid = (i, j)
        if fid not in flow_completions:
            raise KeyError(f"flow {fid} missing from completion-time map")
        completions[i] = max(completions.get(i, 0.0), float(flow_completions[fid]))
    return completions


def weighted_completion_time(
    instance: CoflowInstance, flow_completions: Mapping[FlowId, float]
) -> float:
    """Objective (1): ``sum_k w_k * max_{f in F_k} c_f``."""
    per_coflow = coflow_completion_times(instance, flow_completions)
    return float(sum(instance[i].weight * c for i, c in per_coflow.items()))


def total_completion_time(
    instance: CoflowInstance, flow_completions: Mapping[FlowId, float]
) -> float:
    """Unweighted sum of coflow completion times."""
    per_coflow = coflow_completion_times(instance, flow_completions)
    return float(sum(per_coflow.values()))


def makespan(flow_completions: Mapping[FlowId, float]) -> float:
    """Completion time of the last flow (single-coflow special case)."""
    if not flow_completions:
        return 0.0
    return float(max(flow_completions.values()))


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """Summary statistics of a schedule's completion times."""

    weighted_completion_time: float
    total_completion_time: float
    average_completion_time: float
    makespan: float
    per_coflow: Dict[int, float]


def objective_breakdown(
    instance: CoflowInstance, flow_completions: Mapping[FlowId, float]
) -> ObjectiveBreakdown:
    """Compute all the summary metrics the benchmarks report."""
    per_coflow = coflow_completion_times(instance, flow_completions)
    total = float(sum(per_coflow.values()))
    weighted = float(sum(instance[i].weight * c for i, c in per_coflow.items()))
    count = max(len(per_coflow), 1)
    return ObjectiveBreakdown(
        weighted_completion_time=weighted,
        total_completion_time=total,
        average_completion_time=total / count,
        makespan=float(max(per_coflow.values())) if per_coflow else 0.0,
        per_coflow=per_coflow,
    )
