"""Geometric interval grids for interval-indexed linear programs.

Both sections 2 and 3 of the paper index time by geometrically growing
intervals.  For the circuit LPs (Section 2.1) the grid is

    [0, 1], (1, 1+eps], (1+eps, (1+eps)^2], ..., (tau_ell, tau_{ell+1}]

with ``tau_0 = 0`` and ``tau_ell = (1+eps)^(ell-1)`` for ``ell >= 1``; the
packet LP of Section 3.2 uses the same grid with ``eps = 1`` (powers of two).

:class:`IntervalGrid` owns the boundary sequence, maps time points to interval
indices and implements the two quantities the rounding steps need:

* the *alpha-interval* of a flow — the first interval by whose end a
  cumulative ``alpha`` fraction of the flow is finished (Section 2.1), and
* the displacement arithmetic: a flow whose alpha-interval is ``h`` is
  scheduled to run entirely inside interval ``h + D``.

The paper's optimized constants ``alpha = 0.5``, ``D = 3``, ``eps ~= 0.5436``
(giving the 17.53 approximation factor) are exposed as module constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "IntervalGrid",
    "RoundingParameters",
    "PAPER_ALPHA",
    "PAPER_DISPLACEMENT",
    "PAPER_EPSILON",
    "paper_rounding_parameters",
]

#: Optimized constants from the end of Section 2.1 (17.5319-approximation).
PAPER_ALPHA = 0.5
PAPER_DISPLACEMENT = 3
PAPER_EPSILON = 0.5436


@dataclass(frozen=True)
class RoundingParameters:
    """The (alpha, D, epsilon) triple governing the Section-2.1 rounding.

    The constraints the paper imposes are checked on construction:

    * condition (12): ``D >= ceil(log_{1+eps}(1/alpha)) + 1``;
    * condition (13): ``1 / (1+eps)^(D-1) <= alpha``.

    (The two are equivalent up to integrality; both are asserted.)
    """

    alpha: float = PAPER_ALPHA
    displacement: int = PAPER_DISPLACEMENT
    epsilon: float = PAPER_EPSILON

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ValueError(f"alpha must lie in (0, 1], got {self.alpha}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.displacement < 1:
            raise ValueError("displacement D must be a positive integer")
        min_d = math.ceil(math.log(1.0 / self.alpha, 1.0 + self.epsilon)) + 1
        if self.displacement < min_d:
            raise ValueError(
                f"displacement D={self.displacement} violates condition (12); "
                f"need D >= {min_d} for alpha={self.alpha}, eps={self.epsilon}"
            )
        if 1.0 / (1.0 + self.epsilon) ** (self.displacement - 1) > self.alpha + 1e-12:
            raise ValueError(
                "parameters violate condition (13): 1/(1+eps)^(D-1) must be <= alpha"
            )

    @property
    def blowup_factor(self) -> float:
        """The completion-time blow-up bound of expression (14).

        ``(1+eps)^(D+2) / (1 - alpha)`` — equals ~17.53 for the paper's
        optimized constants.
        """
        return (1.0 + self.epsilon) ** (self.displacement + 2) / (1.0 - self.alpha)


def paper_rounding_parameters() -> RoundingParameters:
    """The optimized constants reported at the end of Section 2.1."""
    return RoundingParameters(
        alpha=PAPER_ALPHA, displacement=PAPER_DISPLACEMENT, epsilon=PAPER_EPSILON
    )


class IntervalGrid:
    """Geometric time grid ``tau_0 = 0 < tau_1 = 1 < tau_2 = 1+eps < ...``.

    Interval ``ell`` is ``(tau_ell, tau_{ell+1}]`` for ``ell = 0 .. L-1``
    (interval 0 is ``[0, 1]``).  ``L`` is chosen so that ``tau_L`` covers the
    requested time ``horizon``.
    """

    def __init__(self, epsilon: float, horizon: float, min_intervals: int = 2) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if min_intervals < 1:
            raise ValueError("min_intervals must be at least 1")
        self.epsilon = float(epsilon)
        self.horizon = float(horizon)
        # Number of intervals L such that tau_L = (1+eps)^(L-1) >= horizon.
        length = max(
            min_intervals,
            1 + math.ceil(math.log(max(horizon, 1.0), 1.0 + epsilon)) + 1,
        )
        boundaries = [0.0]
        for ell in range(1, length + 1):
            boundaries.append((1.0 + epsilon) ** (ell - 1))
        self._boundaries = np.asarray(boundaries, dtype=float)

    # ------------------------------------------------------------------ sizes
    @property
    def num_intervals(self) -> int:
        """Number of intervals L (indices ``0 .. L-1``)."""
        return len(self._boundaries) - 1

    @property
    def boundaries(self) -> np.ndarray:
        """The array ``[tau_0, tau_1, ..., tau_L]``."""
        return self._boundaries.copy()

    def left(self, ell: int) -> float:
        """Left endpoint ``tau_ell`` of interval ``ell``."""
        self._check_index(ell)
        return float(self._boundaries[ell])

    def right(self, ell: int) -> float:
        """Right endpoint ``tau_{ell+1}`` of interval ``ell``."""
        self._check_index(ell)
        return float(self._boundaries[ell + 1])

    def length(self, ell: int) -> float:
        """Length of interval ``ell`` (1 for interval 0)."""
        self._check_index(ell)
        return float(self._boundaries[ell + 1] - self._boundaries[ell])

    def _check_index(self, ell: int) -> None:
        if not (0 <= ell < self.num_intervals):
            raise IndexError(
                f"interval index {ell} out of range [0, {self.num_intervals})"
            )

    # --------------------------------------------------------------- queries
    def interval_of(self, t: float) -> int:
        """Index of the interval containing time ``t`` (``t`` <= tau_L).

        Time 0 belongs to interval 0; boundary points belong to the interval
        they close (intervals are left-open, right-closed).
        """
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        if t > self._boundaries[-1] + 1e-9:
            raise ValueError(
                f"time {t} exceeds the grid horizon tau_L = {self._boundaries[-1]}"
            )
        if t <= self._boundaries[1]:
            return 0
        # searchsorted with side='left' on boundaries: first boundary >= t.
        idx = int(np.searchsorted(self._boundaries, t, side="left"))
        return idx - 1

    def release_interval(self, release_time: float) -> int:
        """First interval in which a flow released at ``release_time`` may run.

        The LP moves every release time to the end of the interval it falls
        in (constraint (9): ``r > tau_{ell+1}  =>  x_ell = 0``), so a flow may
        run in interval ``ell`` iff ``r <= tau_{ell+1}``.
        """
        if release_time <= 0:
            return 0
        return self.interval_of(release_time)

    def alpha_interval(self, fractions: Sequence[float], alpha: float) -> int:
        """The alpha-interval of a flow given its per-interval LP fractions.

        ``fractions[ell]`` is ``x_{ell}`` from the LP solution; the
        alpha-interval is ``min { ell : sum_{t <= ell} x_t >= alpha }``.
        """
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        total = 0.0
        for ell, frac in enumerate(fractions):
            total += frac
            if total >= alpha - 1e-9:
                return ell
        raise ValueError(
            f"fractions sum to {total:.6f} < alpha={alpha}; LP solution incomplete"
        )

    def extended(self, extra_intervals: int) -> "IntervalGrid":
        """A grid with the same epsilon and ``extra_intervals`` more intervals.

        Rounding displaces flows ``D`` intervals to the right, so schedules
        may need boundaries beyond the LP horizon.
        """
        if extra_intervals < 0:
            raise ValueError("extra_intervals must be non-negative")
        new = IntervalGrid.__new__(IntervalGrid)
        new.epsilon = self.epsilon
        new.horizon = self.horizon
        boundaries = list(self._boundaries)
        ell = len(boundaries) - 1
        for _ in range(extra_intervals):
            ell += 1
            boundaries.append((1.0 + self.epsilon) ** (ell - 1))
        new._boundaries = np.asarray(boundaries, dtype=float)
        return new

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IntervalGrid(epsilon={self.epsilon}, horizon={self.horizon}, "
            f"L={self.num_intervals})"
        )
