"""Core substrate: coflow data model, networks, topologies, schedules.

Everything the approximation algorithms of :mod:`repro.circuit` and
:mod:`repro.packet` build on lives here.
"""

from .flows import Coflow, CoflowInstance, Flow, FlowId
from .intervals import (
    IntervalGrid,
    RoundingParameters,
    PAPER_ALPHA,
    PAPER_DISPLACEMENT,
    PAPER_EPSILON,
    paper_rounding_parameters,
)
from .network import Network, path_edges
from .objective import (
    ObjectiveBreakdown,
    coflow_completion_times,
    makespan,
    objective_breakdown,
    total_completion_time,
    weighted_completion_time,
)
from .schedule import (
    BandwidthSegment,
    CircuitSchedule,
    PacketMove,
    PacketSchedule,
    ScheduleError,
)
from . import topologies

__all__ = [
    "Flow",
    "Coflow",
    "CoflowInstance",
    "FlowId",
    "Network",
    "path_edges",
    "topologies",
    "IntervalGrid",
    "RoundingParameters",
    "PAPER_ALPHA",
    "PAPER_DISPLACEMENT",
    "PAPER_EPSILON",
    "paper_rounding_parameters",
    "BandwidthSegment",
    "CircuitSchedule",
    "PacketMove",
    "PacketSchedule",
    "ScheduleError",
    "ObjectiveBreakdown",
    "coflow_completion_times",
    "weighted_completion_time",
    "total_completion_time",
    "makespan",
    "objective_breakdown",
]
