"""The paper's LP-Based scheme, packaged for the simulator.

This is the scheme evaluated as "LP-Based" in Figures 3 and 4: Algorithm 1
(Section 2.2) computes a single routing path per connection request via LP +
flow decomposition + randomized rounding, and the flows are served in the
order of their LP completion times, starting as soon as possible (the
Section-4.2 implementation tweak).  A given-paths variant exists for
topologies with unique paths (trees, non-blocking switches), where only the
Section-2.1 LP is needed.

Both are pipeline compositions now — ``pipeline(router=lp, order=lp)`` and
``pipeline(router=given, order=lp)`` — so this module is a pair of thin
factories onto :class:`~repro.baselines.pipeline.PipelineScheme` keeping
the original constructor signatures; the LP stage implementations live in
:mod:`repro.baselines.stages`.  After :meth:`~repro.baselines.pipeline.
PipelineScheme.plan`, the LP router's routing plan (lower bound included)
is available as ``scheme.last_plan`` and the given-paths relaxation as
``scheme.last_relaxation``, exactly like the former classes exposed.
"""

from __future__ import annotations

from typing import Optional

from ..circuit.given_paths import DEFAULT_EPSILON
from ..circuit.routing import DEFAULT_ROUTING_EPSILON
from .pipeline import PipelineScheme
from .stages import GivenPathsRouter, LPOrderer, LPRouter

__all__ = ["LPBasedScheme", "LPGivenPathsScheme"]


def LPBasedScheme(
    epsilon: float = DEFAULT_ROUTING_EPSILON,
    formulation: str = "path",
    max_candidate_paths: int = 16,
    seed: Optional[int] = 0,
    path_selection: str = "thickest",
    allocator: str = "greedy",
) -> PipelineScheme:
    """LP routing + LP ordering (Algorithm 1), the paper's evaluated scheme.

    ``path_selection="thickest"`` is the evaluated implementation's choice
    (Section 4.2); ``"random"`` switches to the analysed randomized
    rounding.  One LP solve serves both stages: the router publishes its
    completion-time order and the LP orderer consumes it as a hint.
    """
    return PipelineScheme(
        router=LPRouter(
            epsilon=epsilon,
            formulation=formulation,
            max_candidate_paths=max_candidate_paths,
            seed=seed,
            path_selection=path_selection,
        ),
        orderer=LPOrderer(),
        alloc=allocator,
        name="LP-Based",
    )


def LPGivenPathsScheme(
    epsilon: float = DEFAULT_EPSILON, allocator: str = "greedy"
) -> PipelineScheme:
    """LP ordering on an instance whose paths are already fixed (Section 2.1).

    The ``given`` router raises ``ValueError`` when any flow lacks a path;
    use :func:`LPBasedScheme` to route unrouted instances.
    """
    return PipelineScheme(
        router=GivenPathsRouter(),
        orderer=LPOrderer(epsilon=epsilon),
        alloc=allocator,
        name="LP-Based (given paths)",
    )
