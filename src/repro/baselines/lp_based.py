"""The paper's LP-Based scheme, packaged for the simulator.

This is the scheme evaluated as "LP-Based" in Figures 3 and 4: Algorithm 1
(Section 2.2) computes a single routing path per connection request via LP +
flow decomposition + randomized rounding, and the flows are served in the
order of their LP completion times, starting as soon as possible (the
Section-4.2 implementation tweak).  A given-paths variant exists for
topologies with unique paths (trees, non-blocking switches), where only the
Section-2.1 LP is needed.
"""

from __future__ import annotations

from typing import Optional

from ..circuit.algorithm import PathsNotGivenScheduler
from ..circuit.given_paths import DEFAULT_EPSILON, GivenPathsLP
from ..circuit.routing import DEFAULT_ROUTING_EPSILON
from ..core.flows import CoflowInstance
from ..core.network import Network
from ..sim.plan import SimulationPlan
from .base import Scheme, respect_given_paths

__all__ = ["LPBasedScheme", "LPGivenPathsScheme"]


class LPBasedScheme(Scheme):
    """LP routing + LP ordering (Algorithm 1), the paper's evaluated scheme."""

    name = "LP-Based"

    def __init__(
        self,
        epsilon: float = DEFAULT_ROUTING_EPSILON,
        formulation: str = "path",
        max_candidate_paths: int = 16,
        seed: Optional[int] = 0,
        path_selection: str = "thickest",
        allocator: str = "greedy",
    ) -> None:
        self.allocator = allocator
        self.epsilon = epsilon
        self.formulation = formulation
        self.max_candidate_paths = max_candidate_paths
        self.seed = seed
        #: the evaluated implementation picks the thickest decomposition path
        #: (Section 4.2); "random" switches to the analysed randomized rounding
        self.path_selection = path_selection
        #: last routing plan computed (exposed for benchmarks that also want
        #: the LP lower bound / congestion diagnostics)
        self.last_plan = None

    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        scheduler = PathsNotGivenScheduler(
            instance.without_paths(),
            network,
            epsilon=self.epsilon,
            formulation=self.formulation,
            max_candidate_paths=self.max_candidate_paths,
            seed=self.seed,
            path_selection=self.path_selection,
        )
        routing_plan = scheduler.route()
        self.last_plan = routing_plan
        return SimulationPlan(
            paths=dict(routing_plan.paths),
            order=list(routing_plan.flow_order),
            name=self.name,
            allocator=self.allocator,
        )


class LPGivenPathsScheme(Scheme):
    """LP ordering on an instance whose paths are already fixed (Section 2.1)."""

    name = "LP-Based (given paths)"

    def __init__(
        self, epsilon: float = DEFAULT_EPSILON, allocator: str = "greedy"
    ) -> None:
        self.epsilon = epsilon
        self.allocator = allocator
        self.last_relaxation = None

    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        if not instance.all_paths_given:
            raise ValueError(
                "LPGivenPathsScheme requires fixed paths; use LPBasedScheme otherwise"
            )
        # Only the LP ordering is needed here, so the relaxation is built
        # directly (with this scheme's epsilon, which the scheduler wrapper
        # used to silently ignore) rather than through GivenPathsScheduler.
        relaxation = GivenPathsLP(instance, network, epsilon=self.epsilon).relax()
        self.last_relaxation = relaxation
        return SimulationPlan(
            paths=respect_given_paths(instance),
            order=relaxation.flow_order(),
            name=self.name,
            allocator=self.allocator,
        )
