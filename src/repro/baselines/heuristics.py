"""The three competing heuristics of Section 4.3, plus a Varys-style SEBF.

The paper compares its LP-Based algorithm against (quoting Section 4.3):

* **Baseline** — "flows are routed and ordered randomly";
* **Schedule-only** — "flows are routed randomly; ordering is by minimum
  completion time which is computed as the ratio of flow size to path
  bandwidth";
* **Route-only** — "flows are routed for achieving good load balance and edge
  utilization; ordering is arbitrary".

As an extension (useful as a stronger reference point and for the switch
special case) this module also implements **SEBF**, the
Smallest-Effective-Bottleneck-First coflow ordering of Varys: coflows are
ordered by the time they would need if they had the network to themselves
(their bottleneck completion time), and all flows of a higher-priority coflow
precede those of lower-priority ones.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges
from ..sim.plan import SimulationPlan
from .base import Scheme, load_balanced_route, random_route

__all__ = [
    "BaselineScheme",
    "ScheduleOnlyScheme",
    "RouteOnlyScheme",
    "SEBFScheme",
]


class BaselineScheme(Scheme):
    """Random routing, random flow order."""

    name = "Baseline"

    def __init__(
        self,
        seed: Optional[int] = 0,
        max_paths: int = 16,
        allocator: str = "greedy",
    ) -> None:
        self.seed = seed
        self.max_paths = max_paths
        self.allocator = allocator

    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        rng = random.Random(self.seed)
        paths = random_route(instance, network, rng, max_paths=self.max_paths)
        order = list(instance.flow_ids())
        rng.shuffle(order)
        return SimulationPlan(
            paths=paths, order=order, name=self.name, allocator=self.allocator
        )


class ScheduleOnlyScheme(Scheme):
    """Random routing; order by minimum completion time (size / path bandwidth)."""

    name = "Schedule-only"

    def __init__(
        self,
        seed: Optional[int] = 0,
        max_paths: int = 16,
        allocator: str = "greedy",
    ) -> None:
        self.seed = seed
        self.max_paths = max_paths
        self.allocator = allocator

    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        rng = random.Random(self.seed)
        paths = random_route(instance, network, rng, max_paths=self.max_paths)

        def min_completion(fid: FlowId) -> float:
            flow = instance.flow(fid)
            bandwidth = network.bottleneck_capacity(list(paths[fid]))
            return flow.release_time + flow.size / bandwidth

        order = sorted(instance.flow_ids(), key=lambda fid: (min_completion(fid), fid))
        return SimulationPlan(
            paths=paths, order=order, name=self.name, allocator=self.allocator
        )


class RouteOnlyScheme(Scheme):
    """Load-balanced routing; arbitrary (instance) order."""

    name = "Route-only"

    def __init__(self, max_paths: int = 16, allocator: str = "greedy") -> None:
        self.max_paths = max_paths
        self.allocator = allocator

    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        paths = load_balanced_route(instance, network, max_paths=self.max_paths)
        order = list(instance.flow_ids())
        return SimulationPlan(
            paths=paths, order=order, name=self.name, allocator=self.allocator
        )


class SEBFScheme(Scheme):
    """Smallest-Effective-Bottleneck-First coflow ordering (Varys-style).

    Routing uses the same load-balanced rule as Route-only; the ordering is at
    coflow granularity: coflows are sorted by the makespan they would need in
    isolation (the maximum, over edges, of the volume the coflow sends through
    the edge divided by the edge capacity, shifted by the coflow release
    time), and within a coflow flows are sorted by decreasing size.
    """

    name = "SEBF"

    def __init__(self, max_paths: int = 16, allocator: str = "greedy") -> None:
        self.max_paths = max_paths
        self.allocator = allocator

    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        paths = load_balanced_route(instance, network, max_paths=self.max_paths)

        def coflow_bottleneck(index: int) -> float:
            loads: Dict[Tuple[Hashable, Hashable], float] = {}
            for j, flow in enumerate(instance[index].flows):
                for e in path_edges(list(paths[(index, j)])):
                    loads[e] = loads.get(e, 0.0) + flow.size / network.capacity(*e)
            bottleneck = max(loads.values()) if loads else 0.0
            return instance[index].release_time + bottleneck

        coflow_order = sorted(
            range(len(instance.coflows)), key=lambda i: (coflow_bottleneck(i), i)
        )
        order: List[FlowId] = []
        for i in coflow_order:
            flow_ids = sorted(
                ((i, j) for j in range(len(instance[i].flows))),
                key=lambda fid: (-instance.flow(fid).size, fid),
            )
            order.extend(flow_ids)
        return SimulationPlan(
            paths=paths, order=order, name=self.name, allocator=self.allocator
        )
