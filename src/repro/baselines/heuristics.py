"""The three competing heuristics of Section 4.3, plus a Varys-style SEBF.

The paper compares its LP-Based algorithm against (quoting Section 4.3):

* **Baseline** — "flows are routed and ordered randomly";
* **Schedule-only** — "flows are routed randomly; ordering is by minimum
  completion time which is computed as the ratio of flow size to path
  bandwidth";
* **Route-only** — "flows are routed for achieving good load balance and edge
  utilization; ordering is arbitrary";

plus, as an extension, **SEBF** — the Smallest-Effective-Bottleneck-First
coflow ordering of Varys over load-balanced routes.

Each heuristic is a *composition* of registry stages, so this module is now
a set of thin factories onto :class:`~repro.baselines.pipeline.
PipelineScheme` (the stage implementations live in
:mod:`repro.baselines.stages`); the factories keep the original constructor
signatures and produce bit-identical plans to the former hand-written
classes (``tests/baselines/test_scheme_equivalence.py``).
"""

from __future__ import annotations

from typing import Optional

from .pipeline import PipelineScheme
from .stages import (
    ArrivalOrderer,
    BalancedRouter,
    MCTOrderer,
    RandomOrderer,
    RandomRouter,
    SEBFOrderer,
)

__all__ = [
    "BaselineScheme",
    "ScheduleOnlyScheme",
    "RouteOnlyScheme",
    "SEBFScheme",
]


def BaselineScheme(
    seed: Optional[int] = 0, max_paths: int = 16, allocator: str = "greedy"
) -> PipelineScheme:
    """Random routing, random flow order (``pipeline(router=random, order=random)``)."""
    return PipelineScheme(
        router=RandomRouter(seed=seed, max_paths=max_paths),
        orderer=RandomOrderer(seed=seed),
        alloc=allocator,
        name="Baseline",
    )


def ScheduleOnlyScheme(
    seed: Optional[int] = 0, max_paths: int = 16, allocator: str = "greedy"
) -> PipelineScheme:
    """Random routing; minimum-completion-time order (``router=random, order=mct``)."""
    return PipelineScheme(
        router=RandomRouter(seed=seed, max_paths=max_paths),
        orderer=MCTOrderer(),
        alloc=allocator,
        name="Schedule-only",
    )


def RouteOnlyScheme(max_paths: int = 16, allocator: str = "greedy") -> PipelineScheme:
    """Load-balanced routing; arbitrary order (``router=balanced, order=arrival``)."""
    return PipelineScheme(
        router=BalancedRouter(max_paths=max_paths),
        orderer=ArrivalOrderer(),
        alloc=allocator,
        name="Route-only",
    )


def SEBFScheme(max_paths: int = 16, allocator: str = "greedy") -> PipelineScheme:
    """Load-balanced routing; SEBF coflow order (``router=balanced, order=sebf``)."""
    return PipelineScheme(
        router=BalancedRouter(max_paths=max_paths),
        orderer=SEBFOrderer(),
        alloc=allocator,
        name="SEBF",
    )
