"""The pipeline scheme: Router x Orderer x Allocator, optionally online.

One :class:`PipelineScheme` replaces the bespoke per-cell subclasses of the
paper's evaluation grid: any routing rule crossed with any priority ordering
crossed with any rate allocator — statically planned or re-planned at every
coflow arrival (``online=True``) — is one object, addressable from the spec
grammar of :mod:`repro.baselines.spec`.  All legacy scheme names
(``LP-Based``, ``Baseline``, ``SEBF``, ``Online-*``, ...) are thin aliases
onto pipeline compositions, proven bit-identical to the former hand-written
classes by ``tests/baselines/test_scheme_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional

from ..core.flows import CoflowInstance
from ..core.network import Network
from ..sim.allocators import resolve_allocator
from ..sim.plan import SimulationPlan
from .base import Scheme
from .stages import Orderer, PlanContext, Router, render_value

__all__ = ["PipelineScheme", "OnlineScheme"]


class PipelineScheme(Scheme):
    """A scheme composed of registry stages (see the module docstring).

    Parameters
    ----------
    router:
        The routing stage (:data:`~repro.baselines.stages.ROUTERS`).
    orderer:
        The ordering stage (:data:`~repro.baselines.stages.ORDERERS`).
    alloc:
        Rate-allocator registry name
        (:data:`~repro.sim.allocators.ALLOCATORS`); validated eagerly.
    online:
        ``False`` plans once and simulates the static plan; ``True``
        re-plans the unfinished volume at every coflow arrival through the
        :class:`~repro.sim.online.OnlineFlowSimulator`.
    name:
        Display name used in report columns; defaults to the compact spec
        (e.g. ``pipeline(router=lp, order=sebf)``), so ad-hoc compositions
        label themselves.
    """

    def __init__(
        self,
        router: Router,
        orderer: Orderer,
        alloc: str = "greedy",
        online: bool = False,
        name: Optional[str] = None,
    ) -> None:
        resolve_allocator(alloc)  # fail fast on unknown allocator names
        self.router = router
        self.orderer = orderer
        self.alloc = alloc
        self.online = online
        self.name = name or self.spec(compact=True)

    # -------------------------------------------------------------- identity
    def spec(self, compact: bool = False) -> str:
        """Serialize the composition in the spec grammar.

        The canonical form (``compact=False``) spells out every stage
        parameter and is the scheme's :meth:`signature`; the compact form
        drops parameters and flags at their defaults, and is the default
        display name.  Both parse back through
        :func:`repro.baselines.spec.scheme_from_spec`.
        """
        parts = [
            f"router={self.router.spec(compact=compact)}",
            f"order={self.orderer.spec(compact=compact)}",
        ]
        if not compact or self.alloc != "greedy":
            parts.append(f"alloc={self.alloc}")
        if not compact or self.online:
            parts.append(f"online={render_value(self.online)}")
        return f"pipeline({', '.join(parts)})"

    def signature(self) -> str:
        """Stable run-store identity: the canonical stage-spec serialization.

        Unlike the ``repr(vars(...))`` fallback of the base class, this is
        byte-identical across processes for any stage parameters, and two
        differently-spelled specs of the same composition (alias name,
        compact spec, canonical spec) collapse to one signature — so warm
        run stores hit regardless of how the scheme was addressed.
        """
        return self.spec(compact=False)

    def with_options(
        self,
        alloc: Optional[str] = None,
        online: Optional[bool] = None,
        name: Optional[str] = None,
    ) -> "PipelineScheme":
        """A copy with the allocator / online flag / display name replaced."""
        return PipelineScheme(
            router=self.router,
            orderer=self.orderer,
            alloc=self.alloc if alloc is None else alloc,
            online=self.online if online is None else online,
            name=name,
        )

    # -------------------------------------------------------------- planning
    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        """Run the stages: route, then order, then package the plan.

        Stage diagnostics (the LP router's routing plan, the LP orderer's
        relaxation) are republished on the scheme as ``last_*`` attributes.
        For online schemes this is the epoch-zero decision — what the
        scheme would do knowing only the instance as given; the full
        re-planning run goes through :meth:`simulate`.
        """
        context = PlanContext(instance, network)
        paths = self.router.route(context)
        context.paths = paths
        order = self.orderer.order(context)
        for key, value in context.diagnostics.items():
            setattr(self, key, value)
        return SimulationPlan(
            paths=dict(paths),
            order=list(order),
            name=self.name,
            allocator=self.alloc,
            spec=self.signature(),
        )

    def simulate(self, instance: CoflowInstance, network: Network, simulator=None):
        """Execute the scheme: static single plan, or arrival-driven re-plans.

        Static pipelines plan once and run on the array kernel (via the
        base-class path).  Online pipelines hand a replanner to the
        :class:`~repro.sim.online.OnlineFlowSimulator`: at every coflow
        arrival the *same* stage composition re-plans the currently known,
        unfinished volume (flows that already moved volume keep their
        path), and the epochs are spliced into one result.
        """
        if not self.online:
            return super().simulate(instance, network, simulator)
        from ..sim.online import OnlineFlowSimulator

        engine = OnlineFlowSimulator(
            network, lambda context: self.plan(context.instance, context.network)
        )
        return engine.run(instance, plan_name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PipelineScheme(name={self.name!r}, spec={self.spec(compact=True)!r})"


def OnlineScheme(inner: Scheme, name: Optional[str] = None) -> PipelineScheme:
    """Arrival-driven re-planning variant of a pipeline scheme.

    Compatibility constructor for the former ``OnlineScheme`` wrapper class:
    returns a copy of ``inner`` with ``online=True`` and an ``Online-``
    prefixed display name.  Since every scheme is now a
    :class:`PipelineScheme`, the wrapper hierarchy collapsed into the
    ``online=`` flag; non-pipeline schemes should drive
    :class:`~repro.sim.online.OnlineFlowSimulator` directly with a custom
    replanner.
    """
    if not isinstance(inner, PipelineScheme):
        raise TypeError(
            "OnlineScheme() wraps PipelineScheme compositions; for a custom "
            "Scheme, run repro.sim.online.OnlineFlowSimulator with your own "
            "replanner callback instead"
        )
    return inner.with_options(online=True, name=name or f"Online-{inner.name}")
