"""Online scheme wrappers: re-plan any static scheme at every arrival.

Wrapping a static :class:`~repro.baselines.base.Scheme` in
:class:`OnlineScheme` turns it into the operating mode of Varys-style
systems: the scheme no longer sees the whole instance up front — at every
coflow arrival it is re-invoked on the *currently known, unfinished*
volume (sizes replaced by what remains, flows that already moved volume
pinned to their current route), and the resulting plan is spliced into one
continuous simulation by the
:class:`~repro.sim.online.OnlineFlowSimulator`.

The registry in :mod:`repro.analysis.artifacts` exposes these as
``Online-<scheme>`` names, so ``repro sweep`` / ``repro bench`` can compare
static and online variants of the same scheme head-to-head (see
``specs/online.yaml``).
"""

from __future__ import annotations

from ..core.flows import CoflowInstance
from ..core.network import Network
from ..sim.online import OnlineFlowSimulator, ReplanContext
from ..sim.plan import SimulationPlan
from .base import Scheme

__all__ = ["OnlineScheme"]


class OnlineScheme(Scheme):
    """Arrival-driven re-planning wrapper around a static scheme.

    Parameters
    ----------
    inner:
        The static scheme invoked at every coflow arrival (on the arrived,
        unfinished sub-instance).
    name:
        Display name; defaults to ``Online-<inner name>``.
    """

    def __init__(self, inner: Scheme, name: str = None) -> None:
        self.inner = inner
        self.name = name or f"Online-{inner.name}"

    def signature(self) -> str:
        """Stable identity: the wrapper name over the inner scheme's identity."""
        return f"{self.name}[{self.inner.signature()}]"

    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        """The epoch-zero plan (what the scheme knows at the first arrival).

        Online schemes cannot be reduced to one static plan — use
        :meth:`simulate` for the full re-planning run.  This method exists
        for the :class:`~repro.baselines.base.Scheme` contract and for
        inspecting the initial decision.
        """
        return self.inner.plan(instance, network)

    def _replan(self, context: ReplanContext) -> SimulationPlan:
        """Invoke the inner scheme on the arrival context's sub-instance."""
        return self.inner.plan(context.instance, context.network)

    def simulate(self, instance: CoflowInstance, network: Network, simulator=None):
        """Run the online re-planning simulation end-to-end."""
        engine = OnlineFlowSimulator(network, self._replan)
        return engine.run(instance, plan_name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnlineScheme(name={self.name!r}, inner={self.inner!r})"
