"""Scheduling schemes: the paper's LP-Based algorithm and the Section-4.3 heuristics."""

from .base import Scheme, load_balanced_route, random_route, respect_given_paths
from .heuristics import (
    BaselineScheme,
    RouteOnlyScheme,
    SEBFScheme,
    ScheduleOnlyScheme,
)
from .lp_based import LPBasedScheme, LPGivenPathsScheme
from .online import OnlineScheme

__all__ = [
    "Scheme",
    "random_route",
    "load_balanced_route",
    "respect_given_paths",
    "BaselineScheme",
    "ScheduleOnlyScheme",
    "RouteOnlyScheme",
    "SEBFScheme",
    "LPBasedScheme",
    "LPGivenPathsScheme",
    "OnlineScheme",
]
