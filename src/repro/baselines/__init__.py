"""Scheduling schemes: composable Router x Orderer x Allocator pipelines.

Every scheme — the paper's LP-Based algorithm, the Section-4.3 heuristics,
the Varys-style SEBF extension, and their arrival-driven ``Online-*``
variants — is one :class:`PipelineScheme`: a routing stage crossed with an
ordering stage crossed with a rate allocator, optionally re-planned at
every coflow arrival (``online=True``).  Compositions are addressable from
the spec grammar (:func:`scheme_from_spec`); the legacy class names remain
as thin factories producing bit-identical plans.
"""

from .base import Scheme, load_balanced_route, random_route, respect_given_paths
from .heuristics import (
    BaselineScheme,
    RouteOnlyScheme,
    SEBFScheme,
    ScheduleOnlyScheme,
)
from .lp_based import LPBasedScheme, LPGivenPathsScheme
from .pipeline import OnlineScheme, PipelineScheme
from .spec import SCHEME_ALIASES, known_scheme_names, parse_pipeline_spec, scheme_from_spec
from .stages import (
    ORDERERS,
    ROUTERS,
    ArrivalOrderer,
    BalancedRouter,
    GivenPathsRouter,
    LPOrderer,
    LPRouter,
    MCTOrderer,
    Orderer,
    PlanContext,
    RandomOrderer,
    RandomRouter,
    Router,
    SEBFOrderer,
    Stage,
    build_stage,
)

__all__ = [
    "Scheme",
    "random_route",
    "load_balanced_route",
    "respect_given_paths",
    "PipelineScheme",
    "OnlineScheme",
    "PlanContext",
    "Stage",
    "Router",
    "Orderer",
    "RandomRouter",
    "BalancedRouter",
    "LPRouter",
    "GivenPathsRouter",
    "RandomOrderer",
    "ArrivalOrderer",
    "MCTOrderer",
    "SEBFOrderer",
    "LPOrderer",
    "ROUTERS",
    "ORDERERS",
    "build_stage",
    "SCHEME_ALIASES",
    "scheme_from_spec",
    "parse_pipeline_spec",
    "known_scheme_names",
    "BaselineScheme",
    "ScheduleOnlyScheme",
    "RouteOnlyScheme",
    "SEBFScheme",
    "LPBasedScheme",
    "LPGivenPathsScheme",
]
