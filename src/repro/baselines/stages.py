"""Composable scheme stages: routers and orderers behind small registries.

The paper's evaluation grid (Section 4.3) is a *cross-product*: routing
rules x priority orderings x rate policies.  Instead of one hand-written
:class:`~repro.baselines.base.Scheme` subclass per cell, the scheme layer is
decomposed into three orthogonal stage families, each addressable by a short
registry name:

* **Routers** (:data:`ROUTERS`) — flow -> path: ``random`` (uniform among
  candidate shortest paths), ``balanced`` (greedy least-congested),
  ``lp`` (Algorithm 1's LP + flow decomposition + rounding) and ``given``
  (respect paths already attached to the instance);
* **Orderers** (:data:`ORDERERS`) — flow/coflow -> priority order:
  ``random`` (shuffle), ``arrival`` (instance order), ``mct`` (minimum
  completion time), ``sebf`` (Varys-style
  Smallest-Effective-Bottleneck-First) and ``lp`` (LP completion times);
* **Allocators** — the per-event rate policies of
  :mod:`repro.sim.allocators`, already registry-addressable.

A :class:`~repro.baselines.pipeline.PipelineScheme` composes one stage of
each family.  Stages communicate through a :class:`PlanContext`: the router
publishes its paths (and, for the LP router, the LP completion-time order as
a *hint* the LP orderer consumes without a second solve), and stages that
draw randomness share seeded generators through :meth:`PlanContext.rng`, so
``router=random(seed=0), order=random(seed=0)`` consumes one stream exactly
like the legacy Baseline scheme did.

Every stage is a frozen dataclass whose parameters serialize canonically
(:meth:`Stage.spec`), which is what makes scheme signatures — and therefore
experiment run-store keys — stable across processes.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar, Dict, Hashable, List, Mapping, Optional, Tuple, Type

from ..circuit.given_paths import DEFAULT_EPSILON
from ..circuit.routing import DEFAULT_ROUTING_EPSILON
from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges
from .base import load_balanced_route, random_route, respect_given_paths

__all__ = [
    "PlanContext",
    "Stage",
    "Router",
    "Orderer",
    "RandomRouter",
    "BalancedRouter",
    "LPRouter",
    "GivenPathsRouter",
    "RandomOrderer",
    "ArrivalOrderer",
    "MCTOrderer",
    "SEBFOrderer",
    "LPOrderer",
    "ROUTERS",
    "ORDERERS",
    "build_stage",
    "render_value",
]


class PlanContext:
    """Shared state threaded through one pipeline planning pass.

    One context lives for exactly one :meth:`PipelineScheme.plan` call; it
    carries the inputs every stage sees (instance, network), the artifacts
    stages hand to each other (``paths``, ``order_hint``), per-seed random
    generators, and free-form ``diagnostics`` the owning scheme republishes
    as ``last_*`` attributes (e.g. the LP router's routing plan with its
    lower bound).
    """

    def __init__(self, instance: CoflowInstance, network: Network) -> None:
        self.instance = instance
        self.network = network
        #: Router output: flow id -> path (set by the pipeline between stages).
        self.paths: Dict[FlowId, Tuple[Hashable, ...]] = {}
        #: Priority order published by the router as a by-product (the LP
        #: router's completion-time order); only the LP orderer consumes it.
        self.order_hint: Optional[List[FlowId]] = None
        #: Stage diagnostics republished on the scheme (``last_*`` keys).
        self.diagnostics: Dict[str, Any] = {}
        self._rngs: Dict[Optional[int], random.Random] = {}

    def rng(self, seed: Optional[int]) -> random.Random:
        """The context-shared ``random.Random`` for ``seed``.

        Stages asking for the same seed receive the *same* generator object,
        continuing one stream — this is how ``router=random(seed=0)`` plus
        ``order=random(seed=0)`` reproduces the legacy Baseline scheme,
        which routed and shuffled from a single ``Random(0)``.  Distinct
        seeds give independent generators.
        """
        if seed not in self._rngs:
            self._rngs[seed] = random.Random(seed)
        return self._rngs[seed]


def render_value(value: Any) -> str:
    """Canonical spec-grammar rendering of a stage parameter value.

    Inverse of the spec parser's literal coercion: booleans render as
    ``true``/``false``, ``None`` as ``none``, numbers via ``repr`` and
    strings bare (stage parameters are identifier-like names such as
    ``max-min`` or ``thickest``, never free text).
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    return str(value)


@dataclass(frozen=True)
class Stage(abc.ABC):
    """A named, parameterized pipeline stage (router or orderer).

    Concrete stages are frozen dataclasses: their fields are the stage's
    parameters, and :meth:`spec` serializes them canonically for scheme
    signatures and the spec grammar.
    """

    #: Registry name of the stage (``random``, ``lp``, ...).
    key: ClassVar[str] = "abstract"

    def spec(self, compact: bool = False) -> str:
        """Serialize as spec-grammar text: ``name(param=value, ...)``.

        The canonical form (``compact=False``) spells out every parameter in
        field order, so two stage objects are behaviourally identical iff
        their canonical specs are equal — run-store keys build on this.  The
        compact form omits parameters at their defaults (used for display
        names).
        """
        parts = []
        for field in fields(self):
            value = getattr(self, field.name)
            if compact and value == field.default:
                continue
            parts.append(f"{field.name}={render_value(value)}")
        return f"{self.key}({', '.join(parts)})" if parts else self.key

    def __str__(self) -> str:
        """The compact spec form (cosmetic)."""
        return self.spec(compact=True)


class Router(Stage):
    """Routing stage contract: choose a path per flow.

    ``route`` must return a path for *every* flow of the context instance
    and may publish an ordering hint (``context.order_hint``) or
    diagnostics; it must be deterministic given the stage parameters and
    the context (randomness only through :meth:`PlanContext.rng`).
    """

    @abc.abstractmethod
    def route(self, context: PlanContext) -> Dict[FlowId, Tuple[Hashable, ...]]:
        """Compute ``{flow id: path}`` for the context's instance."""


class Orderer(Stage):
    """Ordering stage contract: produce the flow priority order.

    ``order`` runs after routing — ``context.paths`` holds the router's
    output — and returns every flow id of the instance, highest priority
    first.
    """

    @abc.abstractmethod
    def order(self, context: PlanContext) -> List[FlowId]:
        """Compute the priority order over the context's flow ids."""


# ------------------------------------------------------------------ routers

@dataclass(frozen=True)
class RandomRouter(Router):
    """Uniformly random choice among the candidate shortest paths.

    The "flows are routed randomly" rule of the paper's Baseline and
    Schedule-only heuristics.  Flows already carrying a path keep it.
    """

    key: ClassVar[str] = "random"

    seed: Optional[int] = 0
    max_paths: int = 16

    def route(self, context: PlanContext) -> Dict[FlowId, Tuple[Hashable, ...]]:
        """Route every flow on a random candidate path (seeded)."""
        return random_route(
            context.instance,
            context.network,
            context.rng(self.seed),
            max_paths=self.max_paths,
        )


@dataclass(frozen=True)
class BalancedRouter(Router):
    """Greedy least-congested routing (the Route-only/SEBF routing rule)."""

    key: ClassVar[str] = "balanced"

    max_paths: int = 16

    def route(self, context: PlanContext) -> Dict[FlowId, Tuple[Hashable, ...]]:
        """Route flows largest-first onto the least-congested candidates."""
        return load_balanced_route(
            context.instance, context.network, max_paths=self.max_paths
        )


@dataclass(frozen=True)
class LPRouter(Router):
    """Algorithm 1's routing: LP + flow decomposition + randomized rounding.

    Publishes the LP completion-time flow order as the context's ordering
    hint (consumed by :class:`LPOrderer` without a second solve — exactly
    the legacy LP-Based scheme) and the full routing plan, lower bound
    included, as the ``last_plan`` diagnostic.
    """

    key: ClassVar[str] = "lp"

    epsilon: float = DEFAULT_ROUTING_EPSILON
    formulation: str = "path"
    max_candidate_paths: int = 16
    seed: Optional[int] = 0
    path_selection: str = "thickest"

    def route(self, context: PlanContext) -> Dict[FlowId, Tuple[Hashable, ...]]:
        """Solve the routing LP and round to one path per flow."""
        from ..circuit.algorithm import PathsNotGivenScheduler

        scheduler = PathsNotGivenScheduler(
            context.instance.without_paths(),
            context.network,
            epsilon=self.epsilon,
            formulation=self.formulation,
            max_candidate_paths=self.max_candidate_paths,
            seed=self.seed,
            path_selection=self.path_selection,
        )
        routing_plan = scheduler.route()
        context.order_hint = list(routing_plan.flow_order)
        context.diagnostics["last_plan"] = routing_plan
        return dict(routing_plan.paths)


@dataclass(frozen=True)
class GivenPathsRouter(Router):
    """Respect the paths already attached to the instance (trees, switches).

    Raises ``ValueError`` when any flow lacks a path — this router expresses
    the Section-2.1 "paths given" model and cannot invent routes.
    """

    key: ClassVar[str] = "given"

    def route(self, context: PlanContext) -> Dict[FlowId, Tuple[Hashable, ...]]:
        """Collect the instance's fixed paths, requiring full coverage."""
        if not context.instance.all_paths_given:
            raise ValueError(
                "router 'given' requires an instance with fixed paths on "
                "every flow; use router 'lp', 'balanced' or 'random' to "
                "route unrouted instances"
            )
        return respect_given_paths(context.instance)


# ----------------------------------------------------------------- orderers

@dataclass(frozen=True)
class RandomOrderer(Orderer):
    """Uniformly random priority order ("flows are ordered randomly")."""

    key: ClassVar[str] = "random"

    seed: Optional[int] = 0

    def order(self, context: PlanContext) -> List[FlowId]:
        """Shuffle the instance's flow ids with the seeded shared stream."""
        order = list(context.instance.flow_ids())
        context.rng(self.seed).shuffle(order)
        return order


@dataclass(frozen=True)
class ArrivalOrderer(Orderer):
    """Instance (arrival) order — the "ordering is arbitrary" rule."""

    key: ClassVar[str] = "arrival"

    def order(self, context: PlanContext) -> List[FlowId]:
        """Keep the instance's deterministic flow-id order."""
        return list(context.instance.flow_ids())


@dataclass(frozen=True)
class MCTOrderer(Orderer):
    """Minimum-completion-time-first (the Schedule-only ordering rule).

    Orders flows by release time plus size over the bottleneck bandwidth of
    the *routed* path, ties broken by flow id.
    """

    key: ClassVar[str] = "mct"

    def order(self, context: PlanContext) -> List[FlowId]:
        """Sort flows by their isolated completion time on their path."""
        instance, network = context.instance, context.network
        paths = context.paths

        def min_completion(fid: FlowId) -> float:
            flow = instance.flow(fid)
            bandwidth = network.bottleneck_capacity(list(paths[fid]))
            return flow.release_time + flow.size / bandwidth

        return sorted(instance.flow_ids(), key=lambda fid: (min_completion(fid), fid))


@dataclass(frozen=True)
class SEBFOrderer(Orderer):
    """Smallest-Effective-Bottleneck-First coflow ordering (Varys-style).

    Coflows are sorted by the makespan they would need in isolation on
    their routed paths (shifted by release time); within a coflow, flows go
    largest-first.  All flows of a higher-priority coflow precede those of
    lower-priority ones.
    """

    key: ClassVar[str] = "sebf"

    def order(self, context: PlanContext) -> List[FlowId]:
        """Order coflows by isolated bottleneck makespan, flows within by size."""
        instance, network = context.instance, context.network
        paths = context.paths

        def coflow_bottleneck(index: int) -> float:
            loads: Dict[Tuple[Hashable, Hashable], float] = {}
            for j, flow in enumerate(instance[index].flows):
                for e in path_edges(list(paths[(index, j)])):
                    loads[e] = loads.get(e, 0.0) + flow.size / network.capacity(*e)
            bottleneck = max(loads.values()) if loads else 0.0
            return instance[index].release_time + bottleneck

        coflow_order = sorted(
            range(len(instance.coflows)), key=lambda i: (coflow_bottleneck(i), i)
        )
        order: List[FlowId] = []
        for i in coflow_order:
            flow_ids = sorted(
                ((i, j) for j in range(len(instance[i].flows))),
                key=lambda fid: (-instance.flow(fid).size, fid),
            )
            order.extend(flow_ids)
        return order


@dataclass(frozen=True)
class LPOrderer(Orderer):
    """LP completion-time order (the Section-2.1/2.2 ordering rule).

    When the router already solved an LP and published its completion-time
    order (:class:`LPRouter`), that hint is used as-is — one solve serves
    both stages, exactly like the legacy LP-Based scheme.  Otherwise the
    given-paths LP relaxation is solved on the routed instance (the legacy
    given-paths scheme, now composable with *any* router), publishing the
    relaxation as the ``last_relaxation`` diagnostic.

    An *explicit* non-default ``epsilon`` always forces its own relaxation
    solve, hint or not — the parameter selects a specific interval
    structure, so it must never be a silent no-op under an ``lp`` router.
    """

    key: ClassVar[str] = "lp"

    epsilon: float = DEFAULT_EPSILON

    def order(self, context: PlanContext) -> List[FlowId]:
        """Use the router's LP order hint, or solve the given-paths LP."""
        if context.order_hint is not None and self.epsilon == DEFAULT_EPSILON:
            return list(context.order_hint)
        from ..circuit.given_paths import GivenPathsLP

        instance = context.instance
        if not instance.all_paths_given:
            instance = instance.with_paths(
                {fid: list(path) for fid, path in context.paths.items()}
            )
        relaxation = GivenPathsLP(
            instance, context.network, epsilon=self.epsilon
        ).relax()
        context.diagnostics["last_relaxation"] = relaxation
        return relaxation.flow_order()


# --------------------------------------------------------------- registries

#: Router registry: spec-grammar name -> stage class.
ROUTERS: Dict[str, Type[Router]] = {
    cls.key: cls for cls in (RandomRouter, BalancedRouter, LPRouter, GivenPathsRouter)
}

#: Orderer registry: spec-grammar name -> stage class.
ORDERERS: Dict[str, Type[Orderer]] = {
    cls.key: cls
    for cls in (RandomOrderer, ArrivalOrderer, MCTOrderer, SEBFOrderer, LPOrderer)
}


def _coerce(name: str, value: Any, default: Any) -> Any:
    """Coerce a parsed literal to the parameter's default-value type.

    Integer parameters reject fractional floats instead of truncating —
    silently altering a typo like ``max_paths=2.7`` would undermine the
    grammar's strict validation.
    """
    if value is None or default is None:
        return value
    if isinstance(default, bool):
        return bool(value)
    if isinstance(default, int) and not isinstance(value, bool):
        if isinstance(value, float) and not value.is_integer():
            raise ValueError(f"expected an integer for {name!r}, got {value!r}")
        return int(value)
    if isinstance(default, float):
        return float(value)
    return value


def build_stage(
    kind: str,
    registry: Mapping[str, Type[Stage]],
    name: str,
    kwargs: Optional[Mapping[str, Any]] = None,
) -> Stage:
    """Instantiate a registry stage from its spec name and parameters.

    ``kind`` names the stage family for error messages (``"router"`` /
    ``"order"``).  Unknown stage names and unknown or mistyped parameters
    raise ``ValueError`` naming the bad piece and listing the valid choices
    — these messages surface verbatim in ``repro run --scheme`` errors.
    """
    cls = registry.get(name)
    if cls is None:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown {kind} {name!r} (valid {kind}s: {known})")
    declared = {field.name: field for field in fields(cls)}
    kwargs = dict(kwargs or {})
    unknown = sorted(set(kwargs) - set(declared))
    if unknown:
        valid = ", ".join(sorted(declared)) or "none"
        raise ValueError(
            f"{kind} {name!r} got unknown parameter(s) {unknown} "
            f"(valid parameters: {valid})"
        )
    try:
        coerced = {
            key: _coerce(key, value, declared[key].default)
            for key, value in kwargs.items()
        }
        return cls(**coerced)
    except (TypeError, ValueError) as error:
        raise ValueError(f"invalid parameters for {kind} {name!r}: {error}") from None
