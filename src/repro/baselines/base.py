"""Common machinery for the competing schemes of Section 4.3.

Every scheme — the paper's LP-Based algorithm and the three heuristics it is
compared against (Baseline, Schedule-only, Route-only), plus the Varys-style
SEBF extension — is expressed as a :class:`Scheme`: an object that turns a
coflow instance and a network into a :class:`~repro.sim.plan.SimulationPlan`
(a path per flow and a priority order), which the flow-level simulator then
executes.

The routing helpers here implement the two routing rules the heuristics use:

* :func:`random_route` — pick uniformly at random among the candidate
  shortest paths (Baseline and Schedule-only: "flows are routed randomly");
* :func:`load_balanced_route` — greedy least-congested candidate path, where
  congestion is the running sum of volume-per-capacity already assigned to an
  edge (Route-only: "flows are routed for achieving good load balance and
  edge utilization").
"""

from __future__ import annotations

import abc
import random
import re
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.flows import CoflowInstance, Flow, FlowId
from ..core.network import Network, path_edges
from ..sim.plan import SimulationPlan

__all__ = [
    "Scheme",
    "stable_repr",
    "random_route",
    "load_balanced_route",
    "respect_given_paths",
]

Edge = Tuple[Hashable, Hashable]

#: The default ``object.__repr__`` shape: ``<pkg.Cls object at 0x7f...>``
#: (the qualname may itself contain ``<locals>`` for nested classes).
_DEFAULT_OBJECT_REPR = re.compile(r"<(.+?) object at 0x[0-9a-fA-F]+>")


def stable_repr(value: object) -> str:
    """``repr`` with memory addresses stripped from default object reprs.

    Classes without a custom ``__repr__`` render as ``<Cls object at
    0x7f...>`` — different in every process, which used to make scheme
    signatures (and therefore run-store keys) unstable across runs.  The
    address is dropped (``<Cls object>``), keeping everything else of the
    repr intact, so such parameters hash identically everywhere.
    """
    return _DEFAULT_OBJECT_REPR.sub(r"<\1 object>", repr(value))


class Scheme(abc.ABC):
    """A scheduling scheme: produces routing + ordering for the simulator."""

    #: Display name used in benchmark tables.
    name: str = "unnamed"

    @abc.abstractmethod
    def plan(self, instance: CoflowInstance, network: Network) -> SimulationPlan:
        """Compute the simulation plan for ``instance`` on ``network``."""

    def simulate(self, instance: CoflowInstance, network: Network, simulator=None):
        """Plan the instance and execute it on the flow-level simulator.

        This is the entry point the experiment engine drives: one call is
        one (instance, scheme) evaluation.  Static schemes plan once and
        simulate; online pipelines
        (:class:`~repro.baselines.pipeline.PipelineScheme` with
        ``online=True``) override this to re-plan at every coflow arrival
        instead.  ``simulator`` is an optional pre-built
        :class:`~repro.sim.simulator.FlowLevelSimulator` for ``network``
        (the engine reuses one across tasks).
        """
        from ..sim.simulator import FlowLevelSimulator

        simulator = simulator or FlowLevelSimulator(network)
        return simulator.run(instance, self.plan(instance, network))

    def signature(self) -> str:
        """Stable identity string keying the experiment engine's run store.

        Two scheme objects with the same signature produce the same plan on
        the same instance.  :class:`~repro.baselines.pipeline.PipelineScheme`
        — every built-in scheme — overrides this with its canonical
        stage-spec serialization, which is byte-identical across processes
        for any parameters.  This base implementation is the compatibility
        shim for custom :class:`Scheme` subclasses: mutable result
        attributes (``last_*`` diagnostics) are excluded, every other
        attribute is rendered via :func:`stable_repr` (default object reprs
        lose their memory address, so parameter objects without a custom
        ``__repr__`` no longer cause spurious cache misses across
        processes).
        """
        params = {
            key: value
            for key, value in sorted(vars(self).items())
            if not key.startswith("last")
        }
        rendered = ", ".join(f"{k}={stable_repr(v)}" for k, v in params.items())
        return f"{self.name}({rendered})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def respect_given_paths(
    instance: CoflowInstance,
) -> Dict[FlowId, Tuple[Hashable, ...]]:
    """Paths already attached to flows (empty dict when none are given)."""
    return {
        (i, j): flow.path
        for i, j, flow in instance.iter_flows()
        if flow.path is not None
    }


def random_route(
    instance: CoflowInstance,
    network: Network,
    rng: random.Random,
    max_paths: int = 16,
) -> Dict[FlowId, Tuple[Hashable, ...]]:
    """Route every flow on a uniformly random candidate shortest path.

    Flows that already carry a path keep it.
    """
    paths = respect_given_paths(instance)
    cache: Dict[Tuple[Hashable, Hashable], List[List[Hashable]]] = {}
    for i, j, flow in instance.iter_flows():
        fid = (i, j)
        if fid in paths:
            continue
        key = (flow.source, flow.destination)
        if key not in cache:
            cache[key] = network.candidate_paths(*key, max_paths=max_paths)
        paths[fid] = tuple(rng.choice(cache[key]))
    return paths


def load_balanced_route(
    instance: CoflowInstance,
    network: Network,
    max_paths: int = 16,
) -> Dict[FlowId, Tuple[Hashable, ...]]:
    """Greedy least-congested routing over the candidate shortest paths.

    Flows are considered in decreasing size (largest first, the classical
    greedy for makespan-style load balancing); each picks the candidate path
    minimising the resulting maximum edge congestion (volume / capacity),
    breaking ties by path length and then deterministically.
    Flows that already carry a path keep it (their load is still counted).
    """
    load: Dict[Edge, float] = {}

    def add_load(path: Sequence[Hashable], size: float) -> None:
        for e in path_edges(list(path)):
            load[e] = load.get(e, 0.0) + size / network.capacity(*e)

    paths = respect_given_paths(instance)
    for fid, path in paths.items():
        add_load(path, instance.flow(fid).size)

    cache: Dict[Tuple[Hashable, Hashable], List[List[Hashable]]] = {}
    unrouted = [
        ((i, j), flow)
        for i, j, flow in instance.iter_flows()
        if (i, j) not in paths
    ]
    unrouted.sort(key=lambda item: (-item[1].size, item[0]))
    for fid, flow in unrouted:
        key = (flow.source, flow.destination)
        if key not in cache:
            cache[key] = network.candidate_paths(*key, max_paths=max_paths)
        best_path: Optional[Sequence[Hashable]] = None
        best_cost: Optional[Tuple[float, float, int]] = None
        for candidate in cache[key]:
            worst = 0.0
            total = 0.0
            for e in path_edges(candidate):
                contribution = load.get(e, 0.0) + flow.size / network.capacity(*e)
                worst = max(worst, contribution)
                total += load.get(e, 0.0)
            # Tie-break the bottleneck congestion by the total congestion so
            # flows spread over equal-cost paths even when an unavoidable
            # host uplink dominates the maximum.
            ranking = (worst, total, len(candidate))
            if best_cost is None or ranking < best_cost:
                best_cost = ranking
                best_path = candidate
        assert best_path is not None
        paths[fid] = tuple(best_path)
        add_load(best_path, flow.size)
    return paths
