"""The scheme spec grammar: parameterized pipeline specs and legacy aliases.

A *scheme spec* is a short string addressing one point of the scheme
cross-product.  It is either a **legacy alias** (``LP-Based``, ``Baseline``,
``Online-SEBF``, ...) or a **pipeline expression**::

    pipeline(router=<router>, order=<orderer>[, alloc=<allocator>][, online=<bool>])

where ``<router>`` / ``<orderer>`` name registry stages
(:data:`~repro.baselines.stages.ROUTERS` /
:data:`~repro.baselines.stages.ORDERERS`), optionally with per-stage
parameters in the same ``name(key=value, ...)`` form::

    pipeline(router=lp(epsilon=0.5, seed=1), order=sebf, alloc=max-min, online=true)

Literals are ``true``/``false``, ``none``, integers, floats, and bare
identifier-like strings (``max-min``, ``thickest``).  ``repro run
--scheme``, sweep-spec ``schemes:`` lists and ``repro bench`` all parse
scheme names through :func:`scheme_from_spec`, so the whole evaluation
cross-product is expressible from YAML/CLI strings without Python code.

Every legacy scheme name is an entry of :data:`SCHEME_ALIASES` — a thin
name onto a pipeline spec, proven bit-identical to the pre-refactor
hand-written classes by ``tests/baselines/test_scheme_equivalence.py``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple, Union

from ..sim.allocators import ALLOCATORS
from .pipeline import PipelineScheme
from .stages import ORDERERS, ROUTERS, Orderer, Router, build_stage

__all__ = [
    "SCHEME_ALIASES",
    "scheme_from_spec",
    "parse_pipeline_spec",
    "known_scheme_names",
]

#: Legacy scheme display name -> equivalent pipeline spec.  A name alone
#: fixes every stage parameter (seeds included), which is what keeps spec
#: files reproducible; the alias becomes the scheme's display name while its
#: run-store signature is the canonical pipeline serialization (so an alias
#: and its spelled-out spec share cached results).
SCHEME_ALIASES: Dict[str, str] = {
    "LP-Based": "pipeline(router=lp, order=lp)",
    "LP-Based (given paths)": "pipeline(router=given, order=lp)",
    "Route-only": "pipeline(router=balanced, order=arrival)",
    "Schedule-only": "pipeline(router=random, order=mct)",
    "Baseline": "pipeline(router=random, order=random)",
    "SEBF": "pipeline(router=balanced, order=sebf)",
    "SEBF-MaxMin": "pipeline(router=balanced, order=sebf, alloc=max-min)",
    "SEBF-WFair": "pipeline(router=balanced, order=sebf, alloc=weighted)",
    "Online-LP-Based": "pipeline(router=lp, order=lp, online=true)",
    "Online-Route-only": "pipeline(router=balanced, order=arrival, online=true)",
    "Online-Schedule-only": "pipeline(router=random, order=mct, online=true)",
    "Online-Baseline": "pipeline(router=random, order=random, online=true)",
    "Online-SEBF": "pipeline(router=balanced, order=sebf, online=true)",
}

#: Keys a pipeline expression accepts.
_PIPELINE_KEYS = ("router", "order", "alloc", "online")

_TOKEN = re.compile(r"[A-Za-z0-9_.+-]+|[(),=]")
_SKIP = re.compile(r"\s+")

#: A parsed value: a literal, or a (stage name, stage kwargs) call.
_Value = Union[bool, int, float, str, None, Tuple[str, Dict[str, Any]]]


def known_scheme_names() -> List[str]:
    """The sorted legacy alias names (the enumerable part of the grammar)."""
    return sorted(SCHEME_ALIASES)


def _literal(token: str) -> Any:
    """Coerce a bare token to bool / None / int / float, else keep the text."""
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


class _Parser:
    """Recursive-descent parser over the spec token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: List[Tuple[str, int]] = []
        position = 0
        while position < len(text):
            skip = _SKIP.match(text, position)
            if skip:
                position = skip.end()
                continue
            match = _TOKEN.match(text, position)
            if not match:
                raise ValueError(
                    f"malformed scheme spec {text!r}: unexpected character "
                    f"{text[position]!r} at position {position}"
                )
            self.tokens.append((match.group(), position))
            position = match.end()
        self.index = 0

    def _fail(self, expected: str) -> ValueError:
        if self.index < len(self.tokens):
            token, position = self.tokens[self.index]
            got = f"{token!r} at position {position}"
        else:
            got = "end of spec"
        return ValueError(
            f"malformed scheme spec {self.text!r}: expected {expected}, got {got}"
        )

    def peek(self) -> Optional[str]:
        if self.index < len(self.tokens):
            return self.tokens[self.index][0]
        return None

    def take(self, expected: Optional[str] = None, what: str = "") -> str:
        if self.index >= len(self.tokens) or (
            expected is not None and self.tokens[self.index][0] != expected
        ):
            raise self._fail(what or repr(expected))
        token = self.tokens[self.index][0]
        self.index += 1
        return token

    def name(self, what: str) -> str:
        token = self.peek()
        if token is None or token in "(),=":
            raise self._fail(what)
        return self.take()

    def kwargs(self) -> Dict[str, _Value]:
        """Parse ``(key=value, ...)`` including the parentheses."""
        self.take("(", "'('")
        parsed: Dict[str, _Value] = {}
        if self.peek() == ")":
            self.take(")")
            return parsed
        while True:
            key = self.name("a parameter name")
            if key in parsed:
                raise ValueError(
                    f"malformed scheme spec {self.text!r}: duplicate "
                    f"parameter {key!r}"
                )
            self.take("=", "'=' after parameter name")
            value_token = self.name(f"a value for {key!r}")
            if self.peek() == "(":  # a stage call: name(params)
                parsed[key] = (value_token, self.kwargs())
            else:
                parsed[key] = _literal(value_token)
            if self.peek() == ",":
                self.take(",")
                continue
            self.take(")", "',' or ')'")
            return parsed

    def done(self) -> None:
        if self.index != len(self.tokens):
            raise self._fail("end of spec")


def parse_pipeline_spec(text: str) -> Dict[str, _Value]:
    """Parse a ``pipeline(...)`` expression into its raw key/value mapping.

    Values are literals or ``(stage name, stage kwargs)`` pairs; stage and
    allocator names are *not* resolved here (use :func:`scheme_from_spec`
    for a validated scheme object).  Raises ``ValueError`` naming the
    malformed piece and its position.
    """
    parser = _Parser(text)
    head = parser.name("'pipeline'")
    if head != "pipeline":
        raise ValueError(
            f"malformed scheme spec {text!r}: expected 'pipeline(...)', "
            f"got {head!r}"
        )
    parsed = parser.kwargs()
    parser.done()
    unknown = sorted(set(parsed) - set(_PIPELINE_KEYS))
    if unknown:
        raise ValueError(
            f"pipeline spec {text!r} has unknown key(s) {unknown} "
            f"(valid keys: {', '.join(_PIPELINE_KEYS)})"
        )
    for required in ("router", "order"):
        if required not in parsed:
            raise ValueError(
                f"pipeline spec {text!r} is missing the required "
                f"{required}= stage"
            )
    return parsed


def _stage_from_value(kind: str, registry, value: _Value) -> Any:
    """Resolve a parsed ``router=``/``order=`` value to a stage object."""
    if isinstance(value, tuple):
        name, kwargs = value
        return build_stage(kind, registry, name, kwargs)
    if not isinstance(value, str):
        raise ValueError(
            f"{kind} must name a registry stage, got {value!r} "
            f"(valid {kind}s: {', '.join(sorted(registry))})"
        )
    return build_stage(kind, registry, value, {})


def _pipeline_from_parsed(text: str, parsed: Dict[str, _Value]) -> PipelineScheme:
    """Build the scheme object from a parsed pipeline mapping."""
    router: Router = _stage_from_value("router", ROUTERS, parsed["router"])
    orderer: Orderer = _stage_from_value("orderer", ORDERERS, parsed["order"])
    alloc = parsed.get("alloc", "greedy")
    if isinstance(alloc, tuple):
        raise ValueError(
            f"allocator {alloc[0]!r} takes no parameters "
            f"(valid allocators: {', '.join(sorted(ALLOCATORS))})"
        )
    if alloc not in ALLOCATORS:
        raise ValueError(
            f"unknown allocator {alloc!r} "
            f"(valid allocators: {', '.join(sorted(ALLOCATORS))})"
        )
    online = parsed.get("online", False)
    if not isinstance(online, bool):
        raise ValueError(
            f"online must be true or false, got {online!r} in {text!r}"
        )
    return PipelineScheme(router=router, orderer=orderer, alloc=alloc, online=online)


def scheme_from_spec(spec: str) -> PipelineScheme:
    """Resolve a scheme spec string — alias name or pipeline expression.

    Alias names keep their legacy display name (``Baseline``, ``SEBF``,
    ...); raw pipeline expressions are displayed as their compact canonical
    form.  Unknown names raise ``ValueError`` listing the known aliases and
    the grammar; malformed expressions raise naming the bad stage, key or
    token.
    """
    text = spec.strip()
    alias = SCHEME_ALIASES.get(text)
    if alias is not None:
        scheme = _pipeline_from_parsed(alias, parse_pipeline_spec(alias))
        scheme.name = text
        return scheme
    if not text.startswith("pipeline"):
        known = ", ".join(known_scheme_names())
        raise ValueError(
            f"unknown scheme {text!r} (known scheme names: {known}; or "
            "compose one as "
            '"pipeline(router=..., order=..., alloc=..., online=...)" — '
            f"routers: {', '.join(sorted(ROUTERS))}; "
            f"orderers: {', '.join(sorted(ORDERERS))}; "
            f"allocators: {', '.join(sorted(ALLOCATORS))})"
        )
    return _pipeline_from_parsed(text, parse_pipeline_spec(text))
