"""Circuit-based coflow scheduling (Section 2 of the paper).

* :mod:`repro.circuit.given_paths` — the 17.6-approximation when every
  connection request carries a fixed path (Section 2.1).
* :mod:`repro.circuit.routing`, :mod:`repro.circuit.flow_decomposition`,
  :mod:`repro.circuit.randomized_rounding`, :mod:`repro.circuit.algorithm` —
  Algorithm 1 for joint routing and scheduling, the
  ``O(log |E| / log log |E|)``-approximation (Section 2.2).
* :mod:`repro.circuit.lower_bounds` — combinatorial lower bounds used for
  validation alongside the LP bounds of Lemmas 4 and 5.
"""

from .algorithm import PathsNotGivenScheduler, RoutingPlan, route_and_order
from .flow_decomposition import FlowDecomposition, PathFlow, decompose_flow
from .given_paths import (
    GivenPathsLP,
    GivenPathsRelaxation,
    GivenPathsResult,
    GivenPathsScheduler,
    feasible_rounding_parameters,
)
from .randomized_rounding import (
    RoundingOutcome,
    chernoff_congestion_bound,
    congestion_after_rounding,
    round_paths,
)
from .routing import RoutingLP, RoutingRelaxation
from . import lower_bounds

__all__ = [
    "GivenPathsLP",
    "GivenPathsRelaxation",
    "GivenPathsResult",
    "GivenPathsScheduler",
    "feasible_rounding_parameters",
    "RoutingLP",
    "RoutingRelaxation",
    "PathsNotGivenScheduler",
    "RoutingPlan",
    "route_and_order",
    "FlowDecomposition",
    "PathFlow",
    "decompose_flow",
    "RoundingOutcome",
    "round_paths",
    "congestion_after_rounding",
    "chernoff_congestion_bound",
    "lower_bounds",
]
