"""Circuit-based coflows where paths are *not* given (Section 2.2): the LP.

This module builds and solves the interval-indexed multicommodity LP
(15)-(23) that jointly routes and schedules connection requests.  Two
formulations are provided:

``"edge"``
    The paper's formulation: one rate variable per (flow, interval, edge),
    with per-interval flow-conservation constraints.  Faithful but large —
    ``O(n_flows * L * |E|)`` variables.

``"path"``
    An equivalent column formulation over a candidate path set (the
    equal-cost shortest paths by default): one rate variable per
    (flow, interval, candidate path).  On the fat-tree this is exactly the
    set of paths the paper's flow decomposition ends up using ("in all of our
    experiments, the path decomposition routine returns one path per flow"),
    and it is what makes paper-scale instances tractable with the open-source
    solver.  The ablation benchmark compares the two formulations.

Both formulations are assembled through the bulk COO pipeline of
:mod:`repro.lp` — whole variable blocks and constraint families are emitted
as arrays (see DESIGN.md Section 2).  ``build_scalar()`` keeps the legacy
one-row-at-a-time emission as the equivalence-test reference and benchmark
baseline.

Both produce a :class:`RoutingRelaxation` carrying, per flow, the interval
fractions, the LP completion-time proxies, and an aggregate edge (or path)
flow ready for the decomposition + randomized-rounding steps implemented in
:mod:`repro.circuit.flow_decomposition` and
:mod:`repro.circuit.randomized_rounding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.intervals import IntervalGrid
from ..core.network import Network, path_edges
from ..lp import LinearProgram, LPSolution, solve, stacked_aranges
from ._assembly import (
    CompletionLayout,
    add_completion_structure_bulk,
    add_completion_structure_scalar,
    extract_completion,
)
from .flow_decomposition import FlowDecomposition, PathFlow, decompose_flow
from .lower_bounds import flow_transfer_lower_bounds

__all__ = ["RoutingLP", "RoutingRelaxation", "DEFAULT_ROUTING_EPSILON"]

Edge = Tuple[Hashable, Hashable]

#: Section 2.2 sets epsilon = 1 (powers-of-two intervals).
DEFAULT_ROUTING_EPSILON = 1.0


def _default_horizon(instance: CoflowInstance, network: Network) -> float:
    min_cap = network.min_capacity()
    total = instance.total_volume
    horizon = instance.max_release_time + max(total, 1e-9) / min_cap
    return max(horizon, 1.0) * 2.0


@dataclass
class RoutingRelaxation:
    """Solution of the joint routing/scheduling LP (15)-(23)."""

    instance: CoflowInstance
    network: Network
    grid: IntervalGrid
    solution: LPSolution
    formulation: str
    #: per-flow interval fractions x[(i, j)] (length = grid.num_intervals)
    fractions: Dict[FlowId, np.ndarray]
    flow_completion: Dict[FlowId, float]
    coflow_completion: Dict[int, float]
    #: per-flow aggregate edge volume: total volume of the flow crossing each
    #: edge over the whole horizon (used by flow decomposition)
    edge_volumes: Dict[FlowId, Dict[Edge, float]]
    #: for the path formulation, the per-candidate-path volumes directly
    path_volumes: Dict[FlowId, List[PathFlow]]

    @property
    def objective(self) -> float:
        return self.solution.objective

    @property
    def lower_bound(self) -> float:
        """Lemma 5: ``objective / (1 + epsilon)`` (`/2` for the paper's eps=1)."""
        return self.solution.objective / (1.0 + self.grid.epsilon)

    def flow_order(self) -> List[FlowId]:
        """Flows ordered by LP completion times (Section 4.2 policy).

        Coflows are ranked by their LP completion proxy ``C_i`` (the dummy
        flow of the reformulation) and flows within a coflow by their own
        proxy ``c_ij`` — so the ordering respects the coflow-level objective
        the LP optimises while still serialising flows inside a coflow.
        """
        return sorted(
            self.fractions.keys(),
            key=lambda fid: (
                self.coflow_completion[fid[0]],
                self.flow_completion[fid],
                fid,
            ),
        )

    def decompositions(
        self, max_paths: Optional[int] = None
    ) -> Dict[FlowId, FlowDecomposition]:
        """Flow decomposition per connection request (thickest-path order).

        For the path formulation the LP already produces per-path volumes, so
        the decomposition is assembled directly; for the edge formulation the
        aggregate edge volumes are decomposed with
        :func:`repro.circuit.flow_decomposition.decompose_flow`.
        """
        result: Dict[FlowId, FlowDecomposition] = {}
        for i, j, flow in self.instance.iter_flows():
            fid = (i, j)
            if flow.size <= 0:
                continue
            if self.formulation == "path":
                paths = [p for p in self.path_volumes.get(fid, []) if p.value > 1e-9]
                paths.sort(key=lambda p: -p.value)
                result[fid] = FlowDecomposition(
                    source=flow.source, sink=flow.destination, paths=paths, residual={}
                )
            else:
                result[fid] = decompose_flow(
                    self.edge_volumes.get(fid, {}),
                    source=flow.source,
                    sink=flow.destination,
                    max_paths=max_paths,
                )
        return result


class RoutingLP:
    """Builder/solver for the Section-2.2 LP in either formulation."""

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        epsilon: float = DEFAULT_ROUTING_EPSILON,
        horizon: Optional[float] = None,
        formulation: str = "path",
        max_candidate_paths: int = 16,
        path_stretch: int = 0,
    ) -> None:
        if formulation not in ("edge", "path"):
            raise ValueError(f"unknown formulation {formulation!r}")
        for _, _, flow in instance.iter_flows():
            if not network.has_node(flow.source) or not network.has_node(
                flow.destination
            ):
                raise ValueError(
                    f"flow endpoints {flow.source!r}->{flow.destination!r} "
                    "missing from the network"
                )
        self.instance = instance
        self.network = network
        self.formulation = formulation
        self.max_candidate_paths = max_candidate_paths
        self.path_stretch = path_stretch
        self.grid = IntervalGrid(
            epsilon=epsilon, horizon=horizon or _default_horizon(instance, network)
        )
        self._candidate_paths: Dict[FlowId, List[List[Hashable]]] = {}
        self._layout: Optional[CompletionLayout] = None
        #: extra column-layout metadata for the rate-variable block
        self._rate_layout: Dict[str, object] = {}

    # ---------------------------------------------------------------- shared
    def _transfer_rhs(self) -> np.ndarray:
        """Transfer strengthening (endpoint-memoized widest-path searches)."""
        return flow_transfer_lower_bounds(self.instance, self.network)

    def _add_completion_structure(self, lp: LinearProgram) -> None:
        """Scalar variables and constraints (15)-(17), (22): x, c, C, releases."""
        add_completion_structure_scalar(
            lp, self.instance, self.grid, self._transfer_rhs()
        )

    # ----------------------------------------------------------- edge builder
    def _build_edge(self) -> LinearProgram:
        """Vectorized assembly of the edge formulation."""
        instance, network, grid = self.instance, self.network, self.grid
        L = grid.num_intervals
        edges = network.edges()
        E = len(edges)
        lp = LinearProgram(name="circuit-routing-edge")
        layout = add_completion_structure_bulk(
            lp, instance, grid, self._transfer_rhs()
        )
        self._layout = layout
        flows = list(instance.iter_flows())
        active_pos = np.nonzero(layout.active)[0]
        A = active_pos.shape[0]
        lengths = layout.lengths
        nodes = network.nodes()
        N = len(nodes)
        node_index = {v: k for k, v in enumerate(nodes)}

        # Rate variables f[(i,j), ell, e], laid out (active flow, ell, edge).
        f_keys: List = []
        for p in active_pos:
            i, j, _flow = flows[p]
            for ell in range(L):
                f_keys.extend(("f", i, j, ell, e) for e in edges)
        f_range = lp.add_variables(f_keys, lower=0.0)
        f_base = f_range.start
        self._rate_layout = {
            "f_start": f_base,
            "active_pos": active_pos,
            "edges": edges,
            "E": E,
        }
        if A == 0:
            # Still emit the (empty) capacity rows to match the scalar path.
            caps = np.asarray([network.capacity(*e) for e in edges], dtype=float)
            lp.add_constraints_coo(
                rows=np.zeros(0, dtype=np.int64),
                cols=np.zeros(0, dtype=np.int64),
                vals=np.zeros(0),
                senses="<=",
                rhs=np.tile(caps, L),
            )
            return lp

        # Flow conservation (18)-(20): one row per (active flow, interval,
        # node).  The +-1 incidence pattern is identical for every (flow,
        # interval) pair, so it is built once and broadcast.
        t_rows = np.empty(2 * E, dtype=np.int64)
        t_cols = np.empty(2 * E, dtype=np.int64)
        t_vals = np.empty(2 * E)
        for k, (u, v) in enumerate(edges):
            t_rows[2 * k] = node_index[v]      # in-edge of v: +1
            t_cols[2 * k] = k
            t_vals[2 * k] = 1.0
            t_rows[2 * k + 1] = node_index[u]  # out-edge of u: -1
            t_cols[2 * k + 1] = k
            t_vals[2 * k + 1] = -1.0

        a_ids = np.arange(A, dtype=np.int64)
        ell_ids = np.arange(L, dtype=np.int64)
        # rows: ((a * L + ell) * N + node), broadcast over the template.
        rowbase = ((a_ids[:, None] * L + ell_ids[None, :]) * N).reshape(A, L, 1)
        inc_rows = (rowbase + t_rows[None, None, :]).ravel()
        colbase = (f_base + (a_ids[:, None] * L + ell_ids[None, :]) * E).reshape(
            A, L, 1
        )
        inc_cols = (colbase + t_cols[None, None, :]).ravel()
        inc_vals = np.broadcast_to(t_vals, (A, L, 2 * E)).ravel()

        # Source/sink delivered-rate coupling: x[(i,j),ell] enters the source
        # and destination rows with +-size/length.
        src_nodes = np.asarray(
            [node_index[flows[p][2].source] for p in active_pos], dtype=np.int64
        )
        dst_nodes = np.asarray(
            [node_index[flows[p][2].destination] for p in active_pos],
            dtype=np.int64,
        )
        sizes = layout.sizes[active_pos]
        rate = sizes[:, None] / lengths[None, :]  # (A, L)
        x_cols = (layout.xc_base[active_pos][:, None] + ell_ids[None, :])  # (A, L)
        base_al = (a_ids[:, None] * L + ell_ids[None, :]) * N  # (A, L)
        src_rows = (base_al + src_nodes[:, None]).ravel()
        dst_rows = (base_al + dst_nodes[:, None]).ravel()
        x_rows = np.concatenate((dst_rows, src_rows))
        x_cols2 = np.concatenate((x_cols.ravel(), x_cols.ravel()))
        x_vals = np.concatenate((-rate.ravel(), rate.ravel()))

        lp.add_constraints_coo(
            rows=np.concatenate((inc_rows, x_rows)),
            cols=np.concatenate((inc_cols, x_cols2)),
            vals=np.concatenate((inc_vals, x_vals)),
            senses="==",
            rhs=np.zeros(A * L * N),
        )

        # Capacity (21) per edge per interval (row order: ell, then edge).
        caps = np.asarray([network.capacity(*e) for e in edges], dtype=float)
        cap_rows = np.tile(np.arange(L * E, dtype=np.int64), A)
        cap_cols = (
            f_base
            + (a_ids[:, None] * (L * E) + np.arange(L * E, dtype=np.int64)[None, :])
        ).ravel()
        lp.add_constraints_coo(
            rows=cap_rows,
            cols=cap_cols,
            vals=np.ones(A * L * E),
            senses="<=",
            rhs=np.tile(caps, L),
        )
        return lp

    def _build_edge_scalar(self) -> LinearProgram:
        """Legacy scalar assembly of the edge formulation (reference path)."""
        instance, network, grid = self.instance, self.network, self.grid
        L = grid.num_intervals
        edges = network.edges()
        lp = LinearProgram(name="circuit-routing-edge")
        self._add_completion_structure(lp)

        # Rate variables f[(i,j), ell, e].
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for ell in range(L):
                for e in edges:
                    lp.add_variable(("f", i, j, ell, e), lower=0.0)

        # Flow conservation (18)-(20) per flow per interval.
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for ell in range(L):
                length = grid.length(ell)
                for v in network.nodes():
                    incoming = network.in_edges(v)
                    outgoing = network.out_edges(v)
                    terms: Dict[Tuple, float] = {}
                    for e in incoming:
                        terms[("f", i, j, ell, e)] = terms.get(("f", i, j, ell, e), 0.0) + 1.0
                    for e in outgoing:
                        terms[("f", i, j, ell, e)] = terms.get(("f", i, j, ell, e), 0.0) - 1.0
                    if v == flow.destination:
                        # net inflow at the sink equals the delivered rate
                        terms[("x", i, j, ell)] = -flow.size / length
                        lp.add_constraint(terms, "==", 0.0, name=f"sink[{i},{j},{ell}]")
                    elif v == flow.source:
                        # net outflow at the source equals the delivered rate
                        terms[("x", i, j, ell)] = flow.size / length
                        lp.add_constraint(terms, "==", 0.0, name=f"source[{i},{j},{ell}]")
                    else:
                        lp.add_constraint(terms, "==", 0.0, name=f"conserve[{i},{j},{ell},{v}]")

        # Capacity (21) per edge per interval.
        for ell in range(L):
            for e in edges:
                terms = {
                    ("f", i, j, ell, e): 1.0
                    for i, j, flow in instance.iter_flows()
                    if flow.size > 0
                }
                lp.add_constraint(terms, "<=", network.capacity(*e), name=f"cap[{e},{ell}]")
        return lp

    # ----------------------------------------------------------- path builder
    def candidate_paths(self) -> Dict[FlowId, List[List[Hashable]]]:
        """Candidate path set per flow (cached)."""
        if not self._candidate_paths:
            cache: Dict[Tuple[Hashable, Hashable], List[List[Hashable]]] = {}
            for i, j, flow in self.instance.iter_flows():
                key = (flow.source, flow.destination)
                if key not in cache:
                    cache[key] = self.network.candidate_paths(
                        flow.source,
                        flow.destination,
                        max_paths=self.max_candidate_paths,
                        stretch=self.path_stretch,
                    )
                self._candidate_paths[(i, j)] = cache[key]
        return self._candidate_paths

    def _build_path(self) -> LinearProgram:
        """Vectorized assembly of the path (column) formulation."""
        instance, network, grid = self.instance, self.network, self.grid
        L = grid.num_intervals
        lp = LinearProgram(name="circuit-routing-path")
        layout = add_completion_structure_bulk(
            lp, instance, grid, self._transfer_rhs()
        )
        self._layout = layout
        candidates = self.candidate_paths()
        flows = list(instance.iter_flows())
        active_pos = np.nonzero(layout.active)[0]
        A = active_pos.shape[0]
        lengths = layout.lengths
        ell_ids = np.arange(L, dtype=np.int64)

        # Rate variables y[(i,j), ell, p], laid out (active flow, ell, path).
        P = np.asarray(
            [len(candidates[(flows[p][0], flows[p][1])]) for p in active_pos],
            dtype=np.int64,
        )
        y_keys: List = []
        for a, p in enumerate(active_pos):
            i, j, _flow = flows[p]
            for ell in range(L):
                y_keys.extend(("y", i, j, ell, q) for q in range(P[a]))
        y_range = lp.add_variables(y_keys, lower=0.0)
        # Column base of each active flow's (L x P[a]) block.
        y_base = y_range.start + np.concatenate(([0], np.cumsum(P * L)[:-1])) if A else np.zeros(0, dtype=np.int64)
        self._rate_layout = {"y_base": y_base, "P": P, "active_pos": active_pos}

        if A:
            # Volume delivered per interval equals the rate on candidate
            # paths times the interval length: row per (active flow, ell).
            P_row = np.repeat(P, L)  # paths per row, rows ordered (a, ell)
            row_ids = np.arange(A * L, dtype=np.int64)
            row_col_start = np.repeat(y_base, L) + np.tile(ell_ids, A) * P_row
            y_rows = np.repeat(row_ids, P_row)
            y_cols = np.repeat(row_col_start, P_row) + stacked_aranges(P_row)
            y_vals = np.repeat(np.tile(lengths, A), P_row)
            x_rows = row_ids
            x_cols = (layout.xc_base[active_pos][:, None] + ell_ids[None, :]).ravel()
            x_vals = -np.repeat(layout.sizes[active_pos], L)
            lp.add_constraints_coo(
                rows=np.concatenate((y_rows, x_rows)),
                cols=np.concatenate((y_cols, x_cols)),
                vals=np.concatenate((y_vals, x_vals)),
                senses="==",
                rhs=np.zeros(A * L),
            )

        # Capacity per edge per interval.  Edge order matches the scalar
        # path: first seen while walking flows, then their candidate paths.
        edge_users: Dict[Edge, List[Tuple[int, int]]] = {}
        for a, p in enumerate(active_pos):
            i, j, _flow = flows[p]
            for q, path in enumerate(candidates[(i, j)]):
                # dict.fromkeys: a non-simple candidate path contributes one
                # term per edge (the scalar dict semantics), not one per
                # traversal.
                for e in dict.fromkeys(path_edges(path)):
                    edge_users.setdefault(e, []).append((a, q))
        rows_parts: List[np.ndarray] = []
        cols_parts: List[np.ndarray] = []
        rhs_parts: List[np.ndarray] = []
        row_offset = 0
        for e, users in edge_users.items():
            a_arr = np.asarray([a for a, _q in users], dtype=np.int64)
            q_arr = np.asarray([q for _a, q in users], dtype=np.int64)
            # col of y[a, ell, q] = y_base[a] + ell * P[a] + q
            cols = (
                (y_base[a_arr] + q_arr)[None, :]
                + ell_ids[:, None] * P[a_arr][None, :]
            ).ravel()
            rows_parts.append(
                np.repeat(row_offset + ell_ids, a_arr.shape[0])
            )
            cols_parts.append(cols)
            rhs_parts.append(np.full(L, network.capacity(*e)))
            row_offset += L
        if rhs_parts:
            rows = np.concatenate(rows_parts)
            lp.add_constraints_coo(
                rows=rows,
                cols=np.concatenate(cols_parts),
                vals=np.ones(rows.shape[0]),
                senses="<=",
                rhs=np.concatenate(rhs_parts),
            )
        return lp

    def _build_path_scalar(self) -> LinearProgram:
        """Legacy scalar assembly of the path formulation (reference path)."""
        instance, network, grid = self.instance, self.network, self.grid
        L = grid.num_intervals
        lp = LinearProgram(name="circuit-routing-path")
        self._add_completion_structure(lp)
        candidates = self.candidate_paths()

        # Rate variables y[(i,j), ell, path-index].
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for ell in range(L):
                for p in range(len(candidates[(i, j)])):
                    lp.add_variable(("y", i, j, ell, p), lower=0.0)

        # Volume delivered per interval equals the rate on candidate paths
        # times the interval length.
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for ell in range(L):
                length = grid.length(ell)
                terms = {
                    ("y", i, j, ell, p): length
                    for p in range(len(candidates[(i, j)]))
                }
                terms[("x", i, j, ell)] = -flow.size
                lp.add_constraint(terms, "==", 0.0, name=f"route[{i},{j},{ell}]")

        # Capacity per edge per interval.
        edge_terms: Dict[Tuple[Edge, int], Dict[Tuple, float]] = {}
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for p, path in enumerate(candidates[(i, j)]):
                for e in path_edges(path):
                    for ell in range(L):
                        edge_terms.setdefault((e, ell), {})[("y", i, j, ell, p)] = 1.0
        for (e, ell), terms in edge_terms.items():
            lp.add_constraint(terms, "<=", network.capacity(*e), name=f"cap[{e},{ell}]")
        return lp

    def build(self) -> LinearProgram:
        """Assemble the LP in the selected formulation (bulk pipeline)."""
        if self.formulation == "edge":
            return self._build_edge()
        return self._build_path()

    def build_scalar(self) -> LinearProgram:
        """Assemble the same LP through the legacy scalar API.

        Kept as the reference implementation for the LP-equivalence
        regression tests and as the baseline of the assembly benchmark.
        """
        if self.formulation == "edge":
            return self._build_edge_scalar()
        return self._build_path_scalar()

    # ------------------------------------------------------------------ solve
    def relax(self) -> RoutingRelaxation:
        """Build and solve the LP, extracting the structured relaxation."""
        lp = self.build()
        solution = solve(lp)
        grid = self.grid
        layout = self._layout
        L = grid.num_intervals
        lengths = layout.lengths
        fractions, flow_completion, coflow_completion = extract_completion(
            solution, layout
        )
        edge_volumes: Dict[FlowId, Dict[Edge, float]] = {}
        path_volumes: Dict[FlowId, List[PathFlow]] = {}
        active_pos = self._rate_layout["active_pos"]

        if self.formulation == "edge":
            edges = self._rate_layout["edges"]
            E = self._rate_layout["E"]
            f_start = self._rate_layout["f_start"]
            A = active_pos.shape[0]
            if A:
                rates = solution.take(range(f_start, f_start + A * L * E)).reshape(
                    A, L, E
                )
                significant = rates > 1e-9
                vols = np.where(significant, rates, 0.0) * lengths[None, :, None]
                vols = vols.sum(axis=1)  # (A, E)
                used = significant.any(axis=1)  # (A, E)
                for a, p in enumerate(active_pos):
                    fid = layout.flow_ids[p]
                    edge_volumes[fid] = {
                        edges[k]: float(vols[a, k]) for k in np.nonzero(used[a])[0]
                    }
        else:
            candidates = self.candidate_paths()
            y_base = self._rate_layout["y_base"]
            P = self._rate_layout["P"]
            for a, p in enumerate(active_pos):
                fid = layout.flow_ids[p]
                cands = candidates[fid]
                block = solution.take(
                    range(int(y_base[a]), int(y_base[a]) + L * int(P[a]))
                ).reshape(L, int(P[a]))
                per_path = lengths @ block
                path_volumes[fid] = [
                    PathFlow(path=tuple(cands[q]), value=float(per_path[q]))
                    for q in range(int(P[a]))
                    if per_path[q] > 1e-9
                ]
                volumes: Dict[Edge, float] = {}
                for pf in path_volumes[fid]:
                    for e in pf.edges:
                        volumes[e] = volumes.get(e, 0.0) + pf.value
                edge_volumes[fid] = volumes

        return RoutingRelaxation(
            instance=self.instance,
            network=self.network,
            grid=grid,
            solution=solution,
            formulation=self.formulation,
            fractions=fractions,
            flow_completion=flow_completion,
            coflow_completion=coflow_completion,
            edge_volumes=edge_volumes,
            path_volumes=path_volumes,
        )


def lower_bound(
    instance: CoflowInstance,
    network: Network,
    epsilon: float = DEFAULT_ROUTING_EPSILON,
    formulation: str = "path",
) -> float:
    """Lemma-5 lower bound on the optimum (joint routing + scheduling)."""
    return RoutingLP(
        instance, network, epsilon=epsilon, formulation=formulation
    ).relax().lower_bound
