"""Circuit-based coflows where paths are *not* given (Section 2.2): the LP.

This module builds and solves the interval-indexed multicommodity LP
(15)-(23) that jointly routes and schedules connection requests.  Two
formulations are provided:

``"edge"``
    The paper's formulation: one rate variable per (flow, interval, edge),
    with per-interval flow-conservation constraints.  Faithful but large —
    ``O(n_flows * L * |E|)`` variables.

``"path"``
    An equivalent column formulation over a candidate path set (the
    equal-cost shortest paths by default): one rate variable per
    (flow, interval, candidate path).  On the fat-tree this is exactly the
    set of paths the paper's flow decomposition ends up using ("in all of our
    experiments, the path decomposition routine returns one path per flow"),
    and it is what makes paper-scale instances tractable with the open-source
    solver.  The ablation benchmark compares the two formulations.

Both produce a :class:`RoutingRelaxation` carrying, per flow, the interval
fractions, the LP completion-time proxies, and an aggregate edge (or path)
flow ready for the decomposition + randomized-rounding steps implemented in
:mod:`repro.circuit.flow_decomposition` and
:mod:`repro.circuit.randomized_rounding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.intervals import IntervalGrid
from ..core.network import Network, path_edges
from ..lp import LinearProgram, LPSolution, solve
from .flow_decomposition import FlowDecomposition, PathFlow, decompose_flow

__all__ = ["RoutingLP", "RoutingRelaxation", "DEFAULT_ROUTING_EPSILON"]

Edge = Tuple[Hashable, Hashable]

#: Section 2.2 sets epsilon = 1 (powers-of-two intervals).
DEFAULT_ROUTING_EPSILON = 1.0


def _default_horizon(instance: CoflowInstance, network: Network) -> float:
    min_cap = network.min_capacity()
    total = instance.total_volume
    horizon = instance.max_release_time + max(total, 1e-9) / min_cap
    return max(horizon, 1.0) * 2.0


@dataclass
class RoutingRelaxation:
    """Solution of the joint routing/scheduling LP (15)-(23)."""

    instance: CoflowInstance
    network: Network
    grid: IntervalGrid
    solution: LPSolution
    formulation: str
    #: per-flow interval fractions x[(i, j)] (length = grid.num_intervals)
    fractions: Dict[FlowId, np.ndarray]
    flow_completion: Dict[FlowId, float]
    coflow_completion: Dict[int, float]
    #: per-flow aggregate edge volume: total volume of the flow crossing each
    #: edge over the whole horizon (used by flow decomposition)
    edge_volumes: Dict[FlowId, Dict[Edge, float]]
    #: for the path formulation, the per-candidate-path volumes directly
    path_volumes: Dict[FlowId, List[PathFlow]]

    @property
    def objective(self) -> float:
        return self.solution.objective

    @property
    def lower_bound(self) -> float:
        """Lemma 5: ``objective / (1 + epsilon)`` (`/2` for the paper's eps=1)."""
        return self.solution.objective / (1.0 + self.grid.epsilon)

    def flow_order(self) -> List[FlowId]:
        """Flows ordered by LP completion times (Section 4.2 policy).

        Coflows are ranked by their LP completion proxy ``C_i`` (the dummy
        flow of the reformulation) and flows within a coflow by their own
        proxy ``c_ij`` — so the ordering respects the coflow-level objective
        the LP optimises while still serialising flows inside a coflow.
        """
        return sorted(
            self.fractions.keys(),
            key=lambda fid: (
                self.coflow_completion[fid[0]],
                self.flow_completion[fid],
                fid,
            ),
        )

    def decompositions(
        self, max_paths: Optional[int] = None
    ) -> Dict[FlowId, FlowDecomposition]:
        """Flow decomposition per connection request (thickest-path order).

        For the path formulation the LP already produces per-path volumes, so
        the decomposition is assembled directly; for the edge formulation the
        aggregate edge volumes are decomposed with
        :func:`repro.circuit.flow_decomposition.decompose_flow`.
        """
        result: Dict[FlowId, FlowDecomposition] = {}
        for i, j, flow in self.instance.iter_flows():
            fid = (i, j)
            if flow.size <= 0:
                continue
            if self.formulation == "path":
                paths = [p for p in self.path_volumes.get(fid, []) if p.value > 1e-9]
                paths.sort(key=lambda p: -p.value)
                result[fid] = FlowDecomposition(
                    source=flow.source, sink=flow.destination, paths=paths, residual={}
                )
            else:
                result[fid] = decompose_flow(
                    self.edge_volumes.get(fid, {}),
                    source=flow.source,
                    sink=flow.destination,
                    max_paths=max_paths,
                )
        return result


class RoutingLP:
    """Builder/solver for the Section-2.2 LP in either formulation."""

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        epsilon: float = DEFAULT_ROUTING_EPSILON,
        horizon: Optional[float] = None,
        formulation: str = "path",
        max_candidate_paths: int = 16,
        path_stretch: int = 0,
    ) -> None:
        if formulation not in ("edge", "path"):
            raise ValueError(f"unknown formulation {formulation!r}")
        for _, _, flow in instance.iter_flows():
            if not network.has_node(flow.source) or not network.has_node(
                flow.destination
            ):
                raise ValueError(
                    f"flow endpoints {flow.source!r}->{flow.destination!r} "
                    "missing from the network"
                )
        self.instance = instance
        self.network = network
        self.formulation = formulation
        self.max_candidate_paths = max_candidate_paths
        self.path_stretch = path_stretch
        self.grid = IntervalGrid(
            epsilon=epsilon, horizon=horizon or _default_horizon(instance, network)
        )
        self._candidate_paths: Dict[FlowId, List[List[Hashable]]] = {}

    # ---------------------------------------------------------------- shared
    def _add_completion_structure(self, lp: LinearProgram) -> None:
        """Variables and constraints (15)-(17), (22): x, c, C, release times."""
        grid = self.grid
        L = grid.num_intervals
        for i, j, flow in self.instance.iter_flows():
            for ell in range(L):
                lp.add_variable(("x", i, j, ell), lower=0.0, upper=1.0)
            lp.add_variable(("c", i, j), lower=0.0)
        for i, coflow in enumerate(self.instance.coflows):
            lp.add_variable(("C", i), lower=0.0, objective=coflow.weight)
        for i, j, flow in self.instance.iter_flows():
            lp.add_constraint(
                {("x", i, j, ell): 1.0 for ell in range(L)}, "==", 1.0,
                name=f"deliver[{i},{j}]",
            )
            lp.add_constraint(
                {
                    **{("x", i, j, ell): grid.left(ell) for ell in range(L)},
                    ("c", i, j): -1.0,
                },
                "<=",
                0.0,
                name=f"completion[{i},{j}]",
            )
            lp.add_constraint(
                {("c", i, j): 1.0, ("C", i): -1.0}, "<=", 0.0,
                name=f"coflow-last[{i},{j}]",
            )
            # Valid strengthening: no routing can beat release + size divided
            # by the best bottleneck capacity available between the endpoints.
            if flow.size > 0:
                widest = self.network.widest_path(flow.source, flow.destination)
                transfer = flow.release_time + flow.size / self.network.bottleneck_capacity(widest)
                lp.add_constraint(
                    {("c", i, j): 1.0}, ">=", transfer, name=f"transfer[{i},{j}]"
                )
            first = grid.release_interval(flow.release_time)
            for ell in range(first):
                lp.add_constraint(
                    {("x", i, j, ell): 1.0}, "==", 0.0, name=f"release[{i},{j},{ell}]"
                )

    # ----------------------------------------------------------- edge builder
    def _build_edge(self) -> LinearProgram:
        instance, network, grid = self.instance, self.network, self.grid
        L = grid.num_intervals
        edges = network.edges()
        lp = LinearProgram(name="circuit-routing-edge")
        self._add_completion_structure(lp)

        # Rate variables f[(i,j), ell, e].
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for ell in range(L):
                for e in edges:
                    lp.add_variable(("f", i, j, ell, e), lower=0.0)

        # Flow conservation (18)-(20) per flow per interval.
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for ell in range(L):
                length = grid.length(ell)
                for v in network.nodes():
                    incoming = network.in_edges(v)
                    outgoing = network.out_edges(v)
                    terms: Dict[Tuple, float] = {}
                    for e in incoming:
                        terms[("f", i, j, ell, e)] = terms.get(("f", i, j, ell, e), 0.0) + 1.0
                    for e in outgoing:
                        terms[("f", i, j, ell, e)] = terms.get(("f", i, j, ell, e), 0.0) - 1.0
                    if v == flow.destination:
                        # net inflow at the sink equals the delivered rate
                        terms[("x", i, j, ell)] = -flow.size / length
                        lp.add_constraint(terms, "==", 0.0, name=f"sink[{i},{j},{ell}]")
                    elif v == flow.source:
                        # net outflow at the source equals the delivered rate
                        terms[("x", i, j, ell)] = flow.size / length
                        lp.add_constraint(terms, "==", 0.0, name=f"source[{i},{j},{ell}]")
                    else:
                        lp.add_constraint(terms, "==", 0.0, name=f"conserve[{i},{j},{ell},{v}]")

        # Capacity (21) per edge per interval.
        for ell in range(L):
            for e in edges:
                terms = {
                    ("f", i, j, ell, e): 1.0
                    for i, j, flow in instance.iter_flows()
                    if flow.size > 0
                }
                lp.add_constraint(terms, "<=", network.capacity(*e), name=f"cap[{e},{ell}]")
        return lp

    # ----------------------------------------------------------- path builder
    def candidate_paths(self) -> Dict[FlowId, List[List[Hashable]]]:
        """Candidate path set per flow (cached)."""
        if not self._candidate_paths:
            cache: Dict[Tuple[Hashable, Hashable], List[List[Hashable]]] = {}
            for i, j, flow in self.instance.iter_flows():
                key = (flow.source, flow.destination)
                if key not in cache:
                    cache[key] = self.network.candidate_paths(
                        flow.source,
                        flow.destination,
                        max_paths=self.max_candidate_paths,
                        stretch=self.path_stretch,
                    )
                self._candidate_paths[(i, j)] = cache[key]
        return self._candidate_paths

    def _build_path(self) -> LinearProgram:
        instance, network, grid = self.instance, self.network, self.grid
        L = grid.num_intervals
        lp = LinearProgram(name="circuit-routing-path")
        self._add_completion_structure(lp)
        candidates = self.candidate_paths()

        # Rate variables y[(i,j), ell, path-index].
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for ell in range(L):
                for p in range(len(candidates[(i, j)])):
                    lp.add_variable(("y", i, j, ell, p), lower=0.0)

        # Volume delivered per interval equals the rate on candidate paths
        # times the interval length.
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for ell in range(L):
                length = grid.length(ell)
                terms = {
                    ("y", i, j, ell, p): length
                    for p in range(len(candidates[(i, j)]))
                }
                terms[("x", i, j, ell)] = -flow.size
                lp.add_constraint(terms, "==", 0.0, name=f"route[{i},{j},{ell}]")

        # Capacity per edge per interval.
        edge_terms: Dict[Tuple[Edge, int], Dict[Tuple, float]] = {}
        for i, j, flow in instance.iter_flows():
            if flow.size <= 0:
                continue
            for p, path in enumerate(candidates[(i, j)]):
                for e in path_edges(path):
                    for ell in range(L):
                        edge_terms.setdefault((e, ell), {})[("y", i, j, ell, p)] = 1.0
        for (e, ell), terms in edge_terms.items():
            lp.add_constraint(terms, "<=", network.capacity(*e), name=f"cap[{e},{ell}]")
        return lp

    def build(self) -> LinearProgram:
        """Assemble the LP in the selected formulation."""
        if self.formulation == "edge":
            return self._build_edge()
        return self._build_path()

    # ------------------------------------------------------------------ solve
    def relax(self) -> RoutingRelaxation:
        """Build and solve the LP, extracting the structured relaxation."""
        lp = self.build()
        solution = solve(lp)
        grid = self.grid
        L = grid.num_intervals
        fractions: Dict[FlowId, np.ndarray] = {}
        flow_completion: Dict[FlowId, float] = {}
        edge_volumes: Dict[FlowId, Dict[Edge, float]] = {}
        path_volumes: Dict[FlowId, List[PathFlow]] = {}

        for i, j, flow in self.instance.iter_flows():
            fid = (i, j)
            fractions[fid] = np.array(
                [solution.value(("x", i, j, ell)) for ell in range(L)]
            )
            flow_completion[fid] = solution.value(("c", i, j))
            if flow.size <= 0:
                continue
            if self.formulation == "edge":
                volumes: Dict[Edge, float] = {}
                for ell in range(L):
                    length = grid.length(ell)
                    for e in self.network.edges():
                        rate = solution.value(("f", i, j, ell, e), default=0.0)
                        if rate > 1e-9:
                            volumes[e] = volumes.get(e, 0.0) + rate * length
                edge_volumes[fid] = volumes
            else:
                candidates = self.candidate_paths()[fid]
                per_path = np.zeros(len(candidates))
                for ell in range(L):
                    length = grid.length(ell)
                    for p in range(len(candidates)):
                        rate = solution.value(("y", i, j, ell, p), default=0.0)
                        per_path[p] += rate * length
                path_volumes[fid] = [
                    PathFlow(path=tuple(candidates[p]), value=float(per_path[p]))
                    for p in range(len(candidates))
                    if per_path[p] > 1e-9
                ]
                volumes = {}
                for pf in path_volumes[fid]:
                    for e in pf.edges:
                        volumes[e] = volumes.get(e, 0.0) + pf.value
                edge_volumes[fid] = volumes

        coflow_completion = {
            i: solution.value(("C", i)) for i in range(len(self.instance.coflows))
        }
        return RoutingRelaxation(
            instance=self.instance,
            network=self.network,
            grid=grid,
            solution=solution,
            formulation=self.formulation,
            fractions=fractions,
            flow_completion=flow_completion,
            coflow_completion=coflow_completion,
            edge_volumes=edge_volumes,
            path_volumes=path_volumes,
        )


def lower_bound(
    instance: CoflowInstance,
    network: Network,
    epsilon: float = DEFAULT_ROUTING_EPSILON,
    formulation: str = "path",
) -> float:
    """Lemma-5 lower bound on the optimum (joint routing + scheduling)."""
    return RoutingLP(
        instance, network, epsilon=epsilon, formulation=formulation
    ).relax().lower_bound
