"""Algorithm 1: end-to-end circuit-based coflow scheduling without given paths.

The pipeline follows the pseudo-code of Section 2.2:

1. construct the interval-indexed routing LP (:class:`repro.circuit.routing.RoutingLP`);
2. solve it and read off per-flow completion proxies and fractional flows;
3. decompose each flow into paths (``FlowDecomposition``, thickest-first);
4. pick one path per flow by randomized rounding (``Rounding``);
5. return flow paths and an ordering based on the LP completion times.

Two consumers use the output:

* the **flow-level simulator** (Section 4) takes the routed instance plus the
  LP ordering and starts each flow as early as possible — the paper's own
  evaluation methodology ("each flow starts as soon as it can, in the order
  prescribed by the linear program");
* the **theoretical schedule** path re-runs the Section-2.1 given-paths
  machinery on the routed instance, producing a capacity-feasible
  interval-indexed :class:`~repro.core.schedule.CircuitSchedule` whose
  objective can be compared against the Lemma-5 lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network
from ..core.schedule import CircuitSchedule
from .flow_decomposition import FlowDecomposition
from .given_paths import GivenPathsResult, GivenPathsScheduler
from .randomized_rounding import RoundingOutcome, round_paths, thickest_paths
from .routing import DEFAULT_ROUTING_EPSILON, RoutingLP, RoutingRelaxation

__all__ = ["RoutingPlan", "PathsNotGivenScheduler", "route_and_order"]


@dataclass
class RoutingPlan:
    """Output of steps 1-5 of Algorithm 1 (routing + ordering)."""

    relaxation: RoutingRelaxation
    decompositions: Dict[FlowId, FlowDecomposition]
    rounding: RoundingOutcome
    #: the original instance with the chosen single path attached to each flow
    routed_instance: CoflowInstance
    #: flow ordering by LP completion time (the simulator's priority list)
    flow_order: List[FlowId]

    @property
    def paths(self) -> Dict[FlowId, Tuple[Hashable, ...]]:
        return self.rounding.paths

    @property
    def lower_bound(self) -> float:
        """Lemma-5 LP lower bound on the optimal objective."""
        return self.relaxation.lower_bound

    @property
    def congestion_factor(self) -> Optional[float]:
        """Realised post-rounding congestion factor (None if not computed)."""
        return self.rounding.congestion_factor

    @property
    def average_candidate_paths(self) -> float:
        """Average number of decomposition paths per flow.

        The paper reports this is 1 on the fat-tree ("the path decomposition
        routine returns one path per flow"); the benchmark prints it.
        """
        if not self.rounding.candidates:
            return 0.0
        return sum(self.rounding.candidates.values()) / len(self.rounding.candidates)


class PathsNotGivenScheduler:
    """Algorithm 1 with both the practical and the provable back-ends.

    Parameters
    ----------
    instance, network:
        The problem; flows need not (and normally do not) carry paths.
    epsilon:
        Interval growth factor of the routing LP (the paper uses 1).
    formulation:
        ``"path"`` (default, candidate shortest paths) or ``"edge"``
        (the paper's full edge-flow LP).
    seed:
        Seed of the randomized path rounding.
    path_selection:
        ``"random"`` (Raghavan–Thompson randomized rounding, the analysed
        rule) or ``"thickest"`` (the deterministic rule the paper's own
        implementation uses: the path carrying the most LP flow, with
        load-aware tie-breaking).
    """

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        epsilon: float = DEFAULT_ROUTING_EPSILON,
        formulation: str = "path",
        max_candidate_paths: int = 16,
        path_stretch: int = 0,
        seed: Optional[int] = 0,
        horizon: Optional[float] = None,
        path_selection: str = "random",
    ) -> None:
        if path_selection not in ("random", "thickest"):
            raise ValueError(f"unknown path selection rule {path_selection!r}")
        self.instance = instance
        self.network = network
        self.seed = seed
        self.path_selection = path_selection
        self._lp = RoutingLP(
            instance,
            network,
            epsilon=epsilon,
            horizon=horizon,
            formulation=formulation,
            max_candidate_paths=max_candidate_paths,
            path_stretch=path_stretch,
        )

    # ------------------------------------------------------------------ steps
    def relax(self) -> RoutingRelaxation:
        """Solve the routing LP only."""
        return self._lp.relax()

    def route(self, relaxation: Optional[RoutingRelaxation] = None) -> RoutingPlan:
        """Steps 2-5 of Algorithm 1: decomposition, rounding, ordering."""
        relaxation = relaxation or self.relax()
        decompositions = relaxation.decompositions()
        demands = {
            (i, j): flow.size for i, j, flow in self.instance.iter_flows() if flow.size > 0
        }
        if self.path_selection == "thickest":
            rounding = thickest_paths(
                decompositions, network=self.network, demands=demands
            )
        else:
            rounding = round_paths(
                decompositions, network=self.network, demands=demands, seed=self.seed
            )
        routed = self.instance.with_paths(
            {fid: list(path) for fid, path in rounding.paths.items()}
        )
        return RoutingPlan(
            relaxation=relaxation,
            decompositions=decompositions,
            rounding=rounding,
            routed_instance=routed,
            flow_order=relaxation.flow_order(),
        )

    def schedule(
        self, plan: Optional[RoutingPlan] = None, strict: bool = True
    ) -> Tuple[RoutingPlan, GivenPathsResult]:
        """Full provable pipeline: route, then interval-round on the chosen paths.

        Returns the routing plan and the feasible
        :class:`~repro.core.schedule.CircuitSchedule` produced by the
        Section-2.1 rounding on the routed instance.
        """
        plan = plan or self.route()
        scheduler = GivenPathsScheduler(
            plan.routed_instance, self.network, strict=strict
        )
        return plan, scheduler.schedule()


def route_and_order(
    instance: CoflowInstance,
    network: Network,
    seed: Optional[int] = 0,
    formulation: str = "path",
    epsilon: float = DEFAULT_ROUTING_EPSILON,
) -> RoutingPlan:
    """Convenience wrapper: run Algorithm 1 and return the routing plan."""
    return PathsNotGivenScheduler(
        instance, network, epsilon=epsilon, formulation=formulation, seed=seed
    ).route()
