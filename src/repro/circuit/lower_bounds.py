"""Lower bounds on the optimal weighted coflow completion time.

Besides the LP lower bounds of Lemmas 4 and 5 (exposed by
:mod:`repro.circuit.given_paths` and :mod:`repro.circuit.routing`), this
module provides cheap combinatorial lower bounds that hold for *every*
feasible circuit schedule and are used to sanity-check both the LP values and
the schedules produced by every algorithm and baseline:

* **release + transfer bound** — a flow of size ``sigma`` released at ``r``
  cannot complete before ``r + sigma / bottleneck``, where ``bottleneck`` is
  the largest bottleneck capacity over any source-sink path (the widest path);
  a coflow cannot complete before the max of its flows' bounds.

* **edge congestion bound** — for any edge ``e`` and any set of flows whose
  every source-sink path must cross ``e`` (conservatively: flows whose chosen
  path crosses ``e``, in the given-paths case), the last of them cannot finish
  before (total size) / c(e).

The combinatorial bounds are loose but instance-independent of any LP, which
makes them ideal oracles for property-based tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges

__all__ = [
    "flow_transfer_lower_bound",
    "flow_transfer_lower_bounds",
    "coflow_transfer_lower_bound",
    "weighted_transfer_lower_bound",
    "given_paths_congestion_lower_bound",
    "widest_bottleneck",
]


def widest_bottleneck(
    network: Network,
    source: Hashable,
    destination: Hashable,
    cache: Optional[Dict[Tuple[Hashable, Hashable], float]] = None,
) -> float:
    """Bottleneck capacity of the widest ``source -> destination`` path.

    Pass a ``cache`` dict to memoize across calls: flows of one instance
    share a handful of endpoint pairs, and the widest-path search is by far
    the most expensive part of every transfer bound (and of the LP builders'
    transfer-strengthening rows).
    """
    if cache is None:
        widest = network.widest_path(source, destination)
        return network.bottleneck_capacity(widest)
    key = (source, destination)
    bottleneck = cache.get(key)
    if bottleneck is None:
        widest = network.widest_path(source, destination)
        bottleneck = network.bottleneck_capacity(widest)
        cache[key] = bottleneck
    return bottleneck


def flow_transfer_lower_bound(
    flow_source: Hashable,
    flow_destination: Hashable,
    size: float,
    release_time: float,
    network: Network,
) -> float:
    """``release + size / (widest-path bottleneck)`` for a single flow."""
    if size <= 0:
        return release_time
    return release_time + size / widest_bottleneck(network, flow_source, flow_destination)


def flow_transfer_lower_bounds(
    instance: CoflowInstance, network: Network
) -> np.ndarray:
    """Per-flow transfer bounds, in ``instance.iter_flows()`` order.

    The bulk counterpart of :func:`flow_transfer_lower_bound`: one array for
    the whole instance, with the widest-path searches memoized per endpoint
    pair.  This is what the LP builders use for their transfer-strengthening
    rows.
    """
    cache: Dict[Tuple[Hashable, Hashable], float] = {}
    bounds = []
    for _i, _j, flow in instance.iter_flows():
        if flow.size > 0:
            bounds.append(
                flow.release_time
                + flow.size
                / widest_bottleneck(network, flow.source, flow.destination, cache)
            )
        else:
            bounds.append(flow.release_time)
    return np.asarray(bounds, dtype=float)


def coflow_transfer_lower_bound(
    instance: CoflowInstance, coflow_index: int, network: Network
) -> float:
    """Max transfer bound over the coflow's flows."""
    bound = 0.0
    cache: Dict[Tuple[Hashable, Hashable], float] = {}
    for flow in instance[coflow_index].flows:
        if flow.size <= 0:
            candidate = flow.release_time
        else:
            candidate = flow.release_time + flow.size / widest_bottleneck(
                network, flow.source, flow.destination, cache
            )
        bound = max(bound, candidate)
    return bound


def weighted_transfer_lower_bound(
    instance: CoflowInstance, network: Network
) -> float:
    """Weighted sum of per-coflow transfer bounds — a valid lower bound on (1).

    Computed in one vectorized pass: the per-flow bounds array is reduced
    coflow-by-coflow with a single segmented maximum.
    """
    bounds = flow_transfer_lower_bounds(instance, network)
    coflow_of_flow = np.asarray(
        [i for i, _j, _f in instance.iter_flows()], dtype=np.int64
    )
    num_coflows = len(instance.coflows)
    per_coflow = np.zeros(num_coflows)
    if bounds.size:
        np.maximum.at(per_coflow, coflow_of_flow, bounds)
    weights = np.asarray([c.weight for c in instance.coflows], dtype=float)
    return float(weights @ per_coflow)


def given_paths_congestion_lower_bound(
    instance: CoflowInstance, network: Network
) -> float:
    """Congestion-based lower bound on the *makespan* for fixed paths.

    The busiest edge must carry all of the volume routed through it, so the
    last flow cannot complete before ``max_e (volume through e) / c(e)``
    (ignoring release times).  Useful to check single-coflow (makespan)
    instances.
    """
    loads: Dict[Tuple[Hashable, Hashable], float] = {}
    for _, _, flow in instance.iter_flows():
        if flow.path is None:
            raise ValueError("congestion bound requires fixed paths")
        for edge in path_edges(flow.path):
            loads[edge] = loads.get(edge, 0.0) + flow.size
    bound = 0.0
    for edge, load in loads.items():
        bound = max(bound, load / network.capacity(*edge))
    return bound
