"""Lower bounds on the optimal weighted coflow completion time.

Besides the LP lower bounds of Lemmas 4 and 5 (exposed by
:mod:`repro.circuit.given_paths` and :mod:`repro.circuit.routing`), this
module provides cheap combinatorial lower bounds that hold for *every*
feasible circuit schedule and are used to sanity-check both the LP values and
the schedules produced by every algorithm and baseline:

* **release + transfer bound** — a flow of size ``sigma`` released at ``r``
  cannot complete before ``r + sigma / bottleneck``, where ``bottleneck`` is
  the largest bottleneck capacity over any source-sink path (the widest path);
  a coflow cannot complete before the max of its flows' bounds.

* **edge congestion bound** — for any edge ``e`` and any set of flows whose
  every source-sink path must cross ``e`` (conservatively: flows whose chosen
  path crosses ``e``, in the given-paths case), the last of them cannot finish
  before (total size) / c(e).

The combinatorial bounds are loose but instance-independent of any LP, which
makes them ideal oracles for property-based tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges

__all__ = [
    "flow_transfer_lower_bound",
    "coflow_transfer_lower_bound",
    "weighted_transfer_lower_bound",
    "given_paths_congestion_lower_bound",
]


def flow_transfer_lower_bound(
    flow_source: Hashable,
    flow_destination: Hashable,
    size: float,
    release_time: float,
    network: Network,
) -> float:
    """``release + size / (widest-path bottleneck)`` for a single flow."""
    if size <= 0:
        return release_time
    widest = network.widest_path(flow_source, flow_destination)
    bottleneck = network.bottleneck_capacity(widest)
    return release_time + size / bottleneck


def coflow_transfer_lower_bound(
    instance: CoflowInstance, coflow_index: int, network: Network
) -> float:
    """Max transfer bound over the coflow's flows."""
    bound = 0.0
    for flow in instance[coflow_index].flows:
        bound = max(
            bound,
            flow_transfer_lower_bound(
                flow.source, flow.destination, flow.size, flow.release_time, network
            ),
        )
    return bound


def weighted_transfer_lower_bound(
    instance: CoflowInstance, network: Network
) -> float:
    """Weighted sum of per-coflow transfer bounds — a valid lower bound on (1)."""
    return float(
        sum(
            instance[i].weight * coflow_transfer_lower_bound(instance, i, network)
            for i in range(len(instance.coflows))
        )
    )


def given_paths_congestion_lower_bound(
    instance: CoflowInstance, network: Network
) -> float:
    """Congestion-based lower bound on the *makespan* for fixed paths.

    The busiest edge must carry all of the volume routed through it, so the
    last flow cannot complete before ``max_e (volume through e) / c(e)``
    (ignoring release times).  Useful to check single-coflow (makespan)
    instances.
    """
    loads: Dict[Tuple[Hashable, Hashable], float] = {}
    for _, _, flow in instance.iter_flows():
        if flow.path is None:
            raise ValueError("congestion bound requires fixed paths")
        for edge in path_edges(flow.path):
            loads[edge] = loads.get(edge, 0.0) + flow.size
    bound = 0.0
    for edge, load in loads.items():
        bound = max(bound, load / network.capacity(*edge))
    return bound
