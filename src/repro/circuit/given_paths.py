"""Circuit-based coflows with given paths (Section 2.1).

The algorithm has the paper's three-part structure:

1. **Reformulation** — coflow completion times are captured by a dummy flow
   per coflow that must finish last; the coflow weight moves to the dummy
   flow.  In the implementation the dummy flow is represented implicitly by
   the coflow completion variable ``("C", i)``.

2. **Interval-indexed LP** — the LP (4)-(10).  Variables:

   * ``("x", i, j, ell)``: fraction of flow ``(i, j)`` delivered in interval
     ``ell``;
   * ``("c", i, j)``: completion-time proxy of flow ``(i, j)``;
   * ``("C", i)``: completion-time proxy of coflow ``i`` (the dummy flow).

   Constraint (7) defines per-interval bandwidths.  We use the interval
   *length* as the divisor (see DESIGN.md Section 3): Lemma 1 shows a flow
   delivering volume ``v`` during an interval of length ``len`` can be given
   the constant bandwidth ``v / len`` without violating capacities, so
   ``b[i,j,ell] = sigma * x[i,j,ell] / len_ell`` and the capacity constraint
   (8) reads ``sum_{flows through e} b[i,j,ell] <= c(e)``.

3. **Rounding** — each flow is assigned to the ``D``-th interval after its
   alpha-interval and runs there at the constant rate ``sigma / len_k``.
   Feasibility of the construction requires

       alpha * epsilon * (1 + epsilon)^(D-1) >= 1,

   which the default parameters satisfy (the paper's optimized 17.53
   constants satisfy the weaker conditions (12)-(13) stated in the text but
   not this self-consistent one; see DESIGN.md).  The resulting schedule is
   validated against the network before being returned.

Besides the provably-good interval schedule, :class:`GivenPathsScheduler`
exposes the *LP-order policy* used in the paper's own evaluation (Section
4.2): flows ordered by LP completion time and started as early as possible by
the flow-level simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.intervals import IntervalGrid, RoundingParameters
from ..core.network import Network, path_edges
from ..core.schedule import CircuitSchedule, ScheduleError
from ..lp import LinearProgram, LPSolution, solve
from ._assembly import (
    add_completion_structure_bulk,
    add_completion_structure_scalar,
    extract_completion,
)

__all__ = [
    "GivenPathsLP",
    "GivenPathsRelaxation",
    "GivenPathsResult",
    "GivenPathsScheduler",
    "emit_given_paths_lp",
    "feasible_rounding_parameters",
    "DEFAULT_EPSILON",
]

#: Default epsilon for the LP grid when only a lower bound / ordering is
#: needed (the paper's optimized value).
DEFAULT_EPSILON = 0.5436


def feasible_rounding_parameters() -> RoundingParameters:
    """Rounding constants under which the interval schedule is always feasible.

    The constants satisfy ``alpha * eps * (1+eps)^(D-1) >= 1`` (the condition
    needed for the per-interval capacity argument with length-normalised
    bandwidths) while keeping the provable blow-up
    ``(1+eps)^(D+2) / (1-alpha)`` close to its minimum (~27.2).
    """
    return RoundingParameters(alpha=0.49, displacement=4, epsilon=0.55)


def _feasibility_margin(params: RoundingParameters) -> float:
    """``alpha * eps * (1+eps)^(D-1)`` — must be >= 1 for guaranteed feasibility."""
    return (
        params.alpha
        * params.epsilon
        * (1.0 + params.epsilon) ** (params.displacement - 1)
    )


def _default_horizon(instance: CoflowInstance, network: Network) -> float:
    """A safe horizon: all flows run sequentially on the slowest relevant edge."""
    min_cap = network.min_capacity()
    total = instance.total_volume
    horizon = instance.max_release_time + max(total, 1e-9) / min_cap
    return max(horizon, 1.0) * 2.0


@dataclass
class GivenPathsRelaxation:
    """Solution of the interval-indexed LP relaxation (4)-(10)."""

    instance: CoflowInstance
    network: Network
    grid: IntervalGrid
    solution: LPSolution
    #: x[(i, j)] -> per-interval fractions (length = grid.num_intervals)
    fractions: Dict[FlowId, np.ndarray]
    #: LP completion-time proxy per flow
    flow_completion: Dict[FlowId, float]
    #: LP completion-time proxy per coflow
    coflow_completion: Dict[int, float]

    @property
    def objective(self) -> float:
        """Optimal LP objective (sum of weighted coflow completion proxies)."""
        return self.solution.objective

    @property
    def lower_bound(self) -> float:
        """Lemma 4: ``objective / (1 + epsilon)`` lower-bounds any schedule."""
        return self.solution.objective / (1.0 + self.grid.epsilon)

    def flow_order(self) -> List[FlowId]:
        """Flows ordered by LP completion times (the Section 4.2 policy).

        Coflows are ranked by their LP completion proxy (the dummy flow of the
        reformulation) and flows within a coflow by their own proxy; ties
        break lexicographically, so the order is deterministic.
        """
        return sorted(
            self.fractions.keys(),
            key=lambda fid: (
                self.coflow_completion[fid[0]],
                self.flow_completion[fid],
                fid,
            ),
        )

    def coflow_order(self) -> List[int]:
        """Coflows ordered by their LP completion-time proxy."""
        return sorted(
            self.coflow_completion.keys(), key=lambda i: (self.coflow_completion[i], i)
        )


def emit_given_paths_lp(
    instance: CoflowInstance,
    network: Network,
    grid: IntervalGrid,
    transfer_rhs: np.ndarray,
    edge_users: Mapping[Tuple[object, object], List[Tuple[int, float]]],
    release_intervals: Optional[np.ndarray] = None,
) -> Tuple[LinearProgram, "CompletionLayout"]:
    """Emit the given-paths LP (4)-(10) from precomputed per-flow inputs.

    This is the single emission path shared by :meth:`GivenPathsLP.build`
    (which derives ``transfer_rhs`` / ``edge_users`` from the instance on
    every call) and the incremental assembler in :mod:`repro.lp.incremental`
    (which replays cached values) — sharing the code is what makes the
    warm-started matrices *byte-identical* to a cold rebuild by construction.
    """
    L = grid.num_intervals
    lp = LinearProgram(name="circuit-given-paths")
    layout = add_completion_structure_bulk(
        lp, instance, grid, transfer_rhs, release_intervals=release_intervals
    )

    # (7)+(8) capacity per edge per interval, with bandwidths expressed
    # directly in terms of x: sum_f sigma_f * x_f_ell / len_ell <= c(e).
    # One COO sub-block of L rows per edge, concatenated and committed in
    # a single call.
    ell_offsets = np.arange(L, dtype=np.int64)
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    vals_parts: List[np.ndarray] = []
    rhs_parts: List[np.ndarray] = []
    row_offset = 0
    for edge, users in edge_users.items():
        positions = np.asarray([p for p, _s in users], dtype=np.int64)
        sizes = np.asarray([s for _p, s in users], dtype=float)
        # row per interval, one entry per user: x[user, ell].
        rows_parts.append(
            np.repeat(row_offset + ell_offsets, positions.shape[0])
        )
        cols_parts.append(
            (layout.xc_base[positions][None, :] + ell_offsets[:, None]).ravel()
        )
        vals_parts.append((sizes[None, :] / layout.lengths[:, None]).ravel())
        rhs_parts.append(np.full(L, network.capacity(*edge)))
        row_offset += L
    if rhs_parts:
        lp.add_constraints_coo(
            rows=np.concatenate(rows_parts),
            cols=np.concatenate(cols_parts),
            vals=np.concatenate(vals_parts),
            senses="<=",
            rhs=np.concatenate(rhs_parts),
        )
    return lp, layout


class GivenPathsLP:
    """Builder for the interval-indexed LP (4)-(10)."""

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        epsilon: float = DEFAULT_EPSILON,
        horizon: Optional[float] = None,
    ) -> None:
        if not instance.all_paths_given:
            raise ValueError(
                "GivenPathsLP requires every flow to carry a fixed path; "
                "use repro.circuit.routing for the paths-not-given variant"
            )
        for _, _, flow in instance.iter_flows():
            network.validate_path(flow.path)
        self.instance = instance
        self.network = network
        self.grid = IntervalGrid(
            epsilon=epsilon, horizon=horizon or _default_horizon(instance, network)
        )
        self._layout = None

    # ------------------------------------------------------------------ build
    def _transfer_rhs(self) -> np.ndarray:
        """Per-flow transfer strengthening: release + size / path bottleneck."""
        rhs = []
        for _i, _j, flow in self.instance.iter_flows():
            if flow.size > 0:
                rhs.append(
                    flow.release_time
                    + flow.size / self.network.bottleneck_capacity(flow.path)
                )
            else:
                rhs.append(flow.release_time)
        return np.asarray(rhs, dtype=float)

    def _edge_users(self) -> Dict[Tuple[object, object], List[Tuple[int, float]]]:
        """Edges in first-seen order → list of (flow position, size) users.

        A flow whose (non-simple) path traverses the same edge twice is
        listed once for that edge — matching the scalar dict semantics, where
        repeated terms for the same variable key overwrite rather than sum.
        """
        edge_users: Dict[Tuple[object, object], List[Tuple[int, float]]] = {}
        for pos, (_i, _j, flow) in enumerate(self.instance.iter_flows()):
            for edge in dict.fromkeys(path_edges(flow.path)):
                edge_users.setdefault(edge, []).append((pos, flow.size))
        return edge_users

    def build(self) -> LinearProgram:
        """Assemble the LP through the bulk (vectorized) pipeline."""
        lp, layout = emit_given_paths_lp(
            self.instance,
            self.network,
            self.grid,
            self._transfer_rhs(),
            self._edge_users(),
        )
        self._layout = layout
        return lp

    def build_scalar(self) -> LinearProgram:
        """Assemble the same LP through the legacy scalar API.

        Kept as the reference implementation: the LP-equivalence regression
        test asserts this produces matrices identical to :meth:`build`, and
        the assembly benchmark uses it as the baseline.
        """
        network, grid = self.network, self.grid
        L = grid.num_intervals
        lp = LinearProgram(name="circuit-given-paths")
        add_completion_structure_scalar(
            lp, self.instance, grid, self._transfer_rhs()
        )
        flow_ids = [(i, j) for i, j, _f in self.instance.iter_flows()]
        for edge, users in self._edge_users().items():
            cap = network.capacity(*edge)
            for ell in range(L):
                length = grid.length(ell)
                lp.add_constraint(
                    {
                        ("x", *flow_ids[pos], ell): size / length
                        for pos, size in users
                    },
                    "<=",
                    cap,
                    name=f"capacity[{edge},{ell}]",
                )
        return lp

    # ------------------------------------------------------------------ solve
    def relax(self) -> GivenPathsRelaxation:
        """Build and solve the LP, returning the structured relaxation."""
        lp = self.build()
        solution = solve(lp)
        fractions, flow_completion, coflow_completion = extract_completion(
            solution, self._layout
        )
        return GivenPathsRelaxation(
            instance=self.instance,
            network=self.network,
            grid=self.grid,
            solution=solution,
            fractions=fractions,
            flow_completion=flow_completion,
            coflow_completion=coflow_completion,
        )


@dataclass
class GivenPathsResult:
    """Full output of the Section-2.1 algorithm."""

    relaxation: GivenPathsRelaxation
    schedule: CircuitSchedule
    parameters: RoundingParameters
    #: target interval index per flow (alpha-interval + D)
    target_intervals: Dict[FlowId, int]

    @property
    def objective(self) -> float:
        """Weighted coflow completion time of the rounded schedule."""
        return self.schedule.weighted_completion_time(self.relaxation.instance)

    @property
    def lower_bound(self) -> float:
        return self.relaxation.lower_bound

    @property
    def approximation_ratio(self) -> float:
        """Measured ratio of the rounded schedule to the LP lower bound."""
        lb = self.lower_bound
        if lb <= 0:
            return 1.0
        return self.objective / lb


class GivenPathsScheduler:
    """End-to-end scheduler for circuit coflows with fixed paths.

    Parameters
    ----------
    instance, network:
        The problem.  Every flow must carry a path that exists in the network.
    parameters:
        Rounding constants; defaults to :func:`feasible_rounding_parameters`.
    horizon:
        LP time horizon; defaults to a safe upper bound on any reasonable
        schedule's makespan.
    strict:
        When true (default) the rounded schedule is validated and a
        :class:`ScheduleError` is raised on any violation.
    """

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        parameters: Optional[RoundingParameters] = None,
        horizon: Optional[float] = None,
        strict: bool = True,
    ) -> None:
        self.instance = instance
        self.network = network
        self.parameters = parameters or feasible_rounding_parameters()
        self.strict = strict
        self._lp = GivenPathsLP(
            instance, network, epsilon=self.parameters.epsilon, horizon=horizon
        )

    # ------------------------------------------------------------------ steps
    def relax(self) -> GivenPathsRelaxation:
        """Solve the LP relaxation only."""
        return self._lp.relax()

    def round(self, relaxation: GivenPathsRelaxation) -> GivenPathsResult:
        """Round an LP relaxation into a feasible interval schedule."""
        params = self.parameters
        if self.strict and _feasibility_margin(params) < 1.0 - 1e-9:
            raise ScheduleError(
                "rounding parameters do not satisfy "
                "alpha*eps*(1+eps)^(D-1) >= 1; the interval schedule may "
                "violate capacities (pass strict=False to attempt anyway)"
            )
        grid = relaxation.grid.extended(params.displacement + 1)
        schedule = CircuitSchedule()
        targets: Dict[FlowId, int] = {}
        for i, j, flow in self.instance.iter_flows():
            fid = (i, j)
            schedule.set_path(fid, flow.path)
            if flow.size <= 0:
                targets[fid] = 0
                continue
            h = grid.alpha_interval(relaxation.fractions[fid], params.alpha)
            k = h + params.displacement
            targets[fid] = k
            start, end = grid.left(k), grid.right(k)
            rate = flow.size / (end - start)
            schedule.add_segment(fid, start, end, rate)
        if self.strict:
            schedule.validate(self.instance, self.network)
        return GivenPathsResult(
            relaxation=relaxation,
            schedule=schedule,
            parameters=params,
            target_intervals=targets,
        )

    def schedule(self) -> GivenPathsResult:
        """Solve the LP and round it (the full Section-2.1 algorithm)."""
        return self.round(self.relax())

    # ----------------------------------------------------------------- policy
    def lp_order(self) -> List[FlowId]:
        """The practical policy of Section 4.2: flows by LP completion time."""
        return self.relax().flow_order()


def lower_bound(
    instance: CoflowInstance,
    network: Network,
    epsilon: float = DEFAULT_EPSILON,
    horizon: Optional[float] = None,
) -> float:
    """Lemma-4 lower bound on the optimal weighted coflow completion time."""
    return GivenPathsLP(instance, network, epsilon=epsilon, horizon=horizon).relax().lower_bound
