"""Circuit-based coflows with given paths (Section 2.1).

The algorithm has the paper's three-part structure:

1. **Reformulation** — coflow completion times are captured by a dummy flow
   per coflow that must finish last; the coflow weight moves to the dummy
   flow.  In the implementation the dummy flow is represented implicitly by
   the coflow completion variable ``("C", i)``.

2. **Interval-indexed LP** — the LP (4)-(10).  Variables:

   * ``("x", i, j, ell)``: fraction of flow ``(i, j)`` delivered in interval
     ``ell``;
   * ``("c", i, j)``: completion-time proxy of flow ``(i, j)``;
   * ``("C", i)``: completion-time proxy of coflow ``i`` (the dummy flow).

   Constraint (7) defines per-interval bandwidths.  We use the interval
   *length* as the divisor (see DESIGN.md Section 3): Lemma 1 shows a flow
   delivering volume ``v`` during an interval of length ``len`` can be given
   the constant bandwidth ``v / len`` without violating capacities, so
   ``b[i,j,ell] = sigma * x[i,j,ell] / len_ell`` and the capacity constraint
   (8) reads ``sum_{flows through e} b[i,j,ell] <= c(e)``.

3. **Rounding** — each flow is assigned to the ``D``-th interval after its
   alpha-interval and runs there at the constant rate ``sigma / len_k``.
   Feasibility of the construction requires

       alpha * epsilon * (1 + epsilon)^(D-1) >= 1,

   which the default parameters satisfy (the paper's optimized 17.53
   constants satisfy the weaker conditions (12)-(13) stated in the text but
   not this self-consistent one; see DESIGN.md).  The resulting schedule is
   validated against the network before being returned.

Besides the provably-good interval schedule, :class:`GivenPathsScheduler`
exposes the *LP-order policy* used in the paper's own evaluation (Section
4.2): flows ordered by LP completion time and started as early as possible by
the flow-level simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.intervals import IntervalGrid, RoundingParameters
from ..core.network import Network, path_edges
from ..core.schedule import CircuitSchedule, ScheduleError
from ..lp import LinearProgram, LPSolution, solve

__all__ = [
    "GivenPathsLP",
    "GivenPathsRelaxation",
    "GivenPathsResult",
    "GivenPathsScheduler",
    "feasible_rounding_parameters",
    "DEFAULT_EPSILON",
]

#: Default epsilon for the LP grid when only a lower bound / ordering is
#: needed (the paper's optimized value).
DEFAULT_EPSILON = 0.5436


def feasible_rounding_parameters() -> RoundingParameters:
    """Rounding constants under which the interval schedule is always feasible.

    The constants satisfy ``alpha * eps * (1+eps)^(D-1) >= 1`` (the condition
    needed for the per-interval capacity argument with length-normalised
    bandwidths) while keeping the provable blow-up
    ``(1+eps)^(D+2) / (1-alpha)`` close to its minimum (~27.2).
    """
    return RoundingParameters(alpha=0.49, displacement=4, epsilon=0.55)


def _feasibility_margin(params: RoundingParameters) -> float:
    """``alpha * eps * (1+eps)^(D-1)`` — must be >= 1 for guaranteed feasibility."""
    return (
        params.alpha
        * params.epsilon
        * (1.0 + params.epsilon) ** (params.displacement - 1)
    )


def _default_horizon(instance: CoflowInstance, network: Network) -> float:
    """A safe horizon: all flows run sequentially on the slowest relevant edge."""
    min_cap = network.min_capacity()
    total = instance.total_volume
    horizon = instance.max_release_time + max(total, 1e-9) / min_cap
    return max(horizon, 1.0) * 2.0


@dataclass
class GivenPathsRelaxation:
    """Solution of the interval-indexed LP relaxation (4)-(10)."""

    instance: CoflowInstance
    network: Network
    grid: IntervalGrid
    solution: LPSolution
    #: x[(i, j)] -> per-interval fractions (length = grid.num_intervals)
    fractions: Dict[FlowId, np.ndarray]
    #: LP completion-time proxy per flow
    flow_completion: Dict[FlowId, float]
    #: LP completion-time proxy per coflow
    coflow_completion: Dict[int, float]

    @property
    def objective(self) -> float:
        """Optimal LP objective (sum of weighted coflow completion proxies)."""
        return self.solution.objective

    @property
    def lower_bound(self) -> float:
        """Lemma 4: ``objective / (1 + epsilon)`` lower-bounds any schedule."""
        return self.solution.objective / (1.0 + self.grid.epsilon)

    def flow_order(self) -> List[FlowId]:
        """Flows ordered by LP completion times (the Section 4.2 policy).

        Coflows are ranked by their LP completion proxy (the dummy flow of the
        reformulation) and flows within a coflow by their own proxy; ties
        break lexicographically, so the order is deterministic.
        """
        return sorted(
            self.fractions.keys(),
            key=lambda fid: (
                self.coflow_completion[fid[0]],
                self.flow_completion[fid],
                fid,
            ),
        )

    def coflow_order(self) -> List[int]:
        """Coflows ordered by their LP completion-time proxy."""
        return sorted(
            self.coflow_completion.keys(), key=lambda i: (self.coflow_completion[i], i)
        )


class GivenPathsLP:
    """Builder for the interval-indexed LP (4)-(10)."""

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        epsilon: float = DEFAULT_EPSILON,
        horizon: Optional[float] = None,
    ) -> None:
        if not instance.all_paths_given:
            raise ValueError(
                "GivenPathsLP requires every flow to carry a fixed path; "
                "use repro.circuit.routing for the paths-not-given variant"
            )
        for _, _, flow in instance.iter_flows():
            network.validate_path(flow.path)
        self.instance = instance
        self.network = network
        self.grid = IntervalGrid(
            epsilon=epsilon, horizon=horizon or _default_horizon(instance, network)
        )

    # ------------------------------------------------------------------ build
    def build(self) -> LinearProgram:
        """Assemble the LP."""
        instance, network, grid = self.instance, self.network, self.grid
        L = grid.num_intervals
        lp = LinearProgram(name="circuit-given-paths")

        # Variables.
        for i, j, flow in instance.iter_flows():
            for ell in range(L):
                lp.add_variable(("x", i, j, ell), lower=0.0, upper=1.0)
            lp.add_variable(("c", i, j), lower=0.0)
        for i, coflow in enumerate(instance.coflows):
            lp.add_variable(("C", i), lower=0.0, objective=coflow.weight)

        # (4) every flow fully delivered; (5) completion proxy;
        # (6) dummy flow finishes last; (9) release times.
        for i, j, flow in instance.iter_flows():
            lp.add_constraint(
                {("x", i, j, ell): 1.0 for ell in range(L)},
                "==",
                1.0,
                name=f"deliver[{i},{j}]",
            )
            lp.add_constraint(
                {
                    **{("x", i, j, ell): grid.left(ell) for ell in range(L)},
                    ("c", i, j): -1.0,
                },
                "<=",
                0.0,
                name=f"completion[{i},{j}]",
            )
            lp.add_constraint(
                {("c", i, j): 1.0, ("C", i): -1.0},
                "<=",
                0.0,
                name=f"coflow-last[{i},{j}]",
            )
            # Valid strengthening: no schedule can finish a flow before its
            # release plus its size divided by the path's bottleneck capacity.
            if flow.size > 0:
                transfer = flow.release_time + flow.size / network.bottleneck_capacity(
                    flow.path
                )
                lp.add_constraint(
                    {("c", i, j): 1.0}, ">=", transfer, name=f"transfer[{i},{j}]"
                )
            first = grid.release_interval(flow.release_time)
            for ell in range(first):
                lp.add_constraint(
                    {("x", i, j, ell): 1.0}, "==", 0.0, name=f"release[{i},{j},{ell}]"
                )

        # (7)+(8) capacity per edge per interval, with bandwidths expressed
        # directly in terms of x: sum_f sigma_f * x_f_ell / len_ell <= c(e).
        edge_users: Dict[Tuple[object, object], List[Tuple[FlowId, float]]] = {}
        for i, j, flow in instance.iter_flows():
            for edge in path_edges(flow.path):
                edge_users.setdefault(edge, []).append(((i, j), flow.size))
        for edge, users in edge_users.items():
            cap = network.capacity(*edge)
            for ell in range(L):
                length = grid.length(ell)
                lp.add_constraint(
                    {
                        ("x", i, j, ell): size / length
                        for (i, j), size in users
                    },
                    "<=",
                    cap,
                    name=f"capacity[{edge},{ell}]",
                )
        return lp

    # ------------------------------------------------------------------ solve
    def relax(self) -> GivenPathsRelaxation:
        """Build and solve the LP, returning the structured relaxation."""
        lp = self.build()
        solution = solve(lp)
        L = self.grid.num_intervals
        fractions: Dict[FlowId, np.ndarray] = {}
        flow_completion: Dict[FlowId, float] = {}
        for i, j, _flow in self.instance.iter_flows():
            fractions[(i, j)] = np.array(
                [solution.value(("x", i, j, ell)) for ell in range(L)]
            )
            flow_completion[(i, j)] = solution.value(("c", i, j))
        coflow_completion = {
            i: solution.value(("C", i)) for i in range(len(self.instance.coflows))
        }
        return GivenPathsRelaxation(
            instance=self.instance,
            network=self.network,
            grid=self.grid,
            solution=solution,
            fractions=fractions,
            flow_completion=flow_completion,
            coflow_completion=coflow_completion,
        )


@dataclass
class GivenPathsResult:
    """Full output of the Section-2.1 algorithm."""

    relaxation: GivenPathsRelaxation
    schedule: CircuitSchedule
    parameters: RoundingParameters
    #: target interval index per flow (alpha-interval + D)
    target_intervals: Dict[FlowId, int]

    @property
    def objective(self) -> float:
        """Weighted coflow completion time of the rounded schedule."""
        return self.schedule.weighted_completion_time(self.relaxation.instance)

    @property
    def lower_bound(self) -> float:
        return self.relaxation.lower_bound

    @property
    def approximation_ratio(self) -> float:
        """Measured ratio of the rounded schedule to the LP lower bound."""
        lb = self.lower_bound
        if lb <= 0:
            return 1.0
        return self.objective / lb


class GivenPathsScheduler:
    """End-to-end scheduler for circuit coflows with fixed paths.

    Parameters
    ----------
    instance, network:
        The problem.  Every flow must carry a path that exists in the network.
    parameters:
        Rounding constants; defaults to :func:`feasible_rounding_parameters`.
    horizon:
        LP time horizon; defaults to a safe upper bound on any reasonable
        schedule's makespan.
    strict:
        When true (default) the rounded schedule is validated and a
        :class:`ScheduleError` is raised on any violation.
    """

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        parameters: Optional[RoundingParameters] = None,
        horizon: Optional[float] = None,
        strict: bool = True,
    ) -> None:
        self.instance = instance
        self.network = network
        self.parameters = parameters or feasible_rounding_parameters()
        self.strict = strict
        self._lp = GivenPathsLP(
            instance, network, epsilon=self.parameters.epsilon, horizon=horizon
        )

    # ------------------------------------------------------------------ steps
    def relax(self) -> GivenPathsRelaxation:
        """Solve the LP relaxation only."""
        return self._lp.relax()

    def round(self, relaxation: GivenPathsRelaxation) -> GivenPathsResult:
        """Round an LP relaxation into a feasible interval schedule."""
        params = self.parameters
        if self.strict and _feasibility_margin(params) < 1.0 - 1e-9:
            raise ScheduleError(
                "rounding parameters do not satisfy "
                "alpha*eps*(1+eps)^(D-1) >= 1; the interval schedule may "
                "violate capacities (pass strict=False to attempt anyway)"
            )
        grid = relaxation.grid.extended(params.displacement + 1)
        schedule = CircuitSchedule()
        targets: Dict[FlowId, int] = {}
        for i, j, flow in self.instance.iter_flows():
            fid = (i, j)
            schedule.set_path(fid, flow.path)
            if flow.size <= 0:
                targets[fid] = 0
                continue
            h = grid.alpha_interval(relaxation.fractions[fid], params.alpha)
            k = h + params.displacement
            targets[fid] = k
            start, end = grid.left(k), grid.right(k)
            rate = flow.size / (end - start)
            schedule.add_segment(fid, start, end, rate)
        if self.strict:
            schedule.validate(self.instance, self.network)
        return GivenPathsResult(
            relaxation=relaxation,
            schedule=schedule,
            parameters=params,
            target_intervals=targets,
        )

    def schedule(self) -> GivenPathsResult:
        """Solve the LP and round it (the full Section-2.1 algorithm)."""
        return self.round(self.relax())

    # ----------------------------------------------------------------- policy
    def lp_order(self) -> List[FlowId]:
        """The practical policy of Section 4.2: flows by LP completion time."""
        return self.relax().flow_order()


def lower_bound(
    instance: CoflowInstance,
    network: Network,
    epsilon: float = DEFAULT_EPSILON,
    horizon: Optional[float] = None,
) -> float:
    """Lemma-4 lower bound on the optimal weighted coflow completion time."""
    return GivenPathsLP(instance, network, epsilon=epsilon, horizon=horizon).relax().lower_bound
