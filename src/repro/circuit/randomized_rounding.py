"""Randomized path selection (Raghavan–Thompson rounding, Section 2.2).

After flow decomposition each connection request owns a set of flow paths
``P_ij = {p_1, ..., p_m}`` with positive values; the final rounding step picks
exactly one of them, with probability proportional to the value it carries,
and routes the entire request over the chosen path.  The paper's
Chernoff–Hoeffding argument shows the resulting per-edge congestion exceeds
capacity by at most an ``O(log |E| / log log |E|)`` factor with high
probability; :func:`congestion_after_rounding` measures the realised factor so
benchmarks and tests can confirm the bound does not bind in practice (on the
fat-tree it is ~1, as the paper observes).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.flows import FlowId
from ..core.network import Network, path_edges
from .flow_decomposition import FlowDecomposition, PathFlow

__all__ = [
    "RoundingOutcome",
    "choose_path",
    "round_paths",
    "thickest_paths",
    "congestion_after_rounding",
    "chernoff_congestion_bound",
]

Edge = Tuple[Hashable, Hashable]


@dataclass
class RoundingOutcome:
    """Result of randomized path selection for a set of connection requests."""

    #: chosen single path per flow
    paths: Dict[FlowId, Tuple[Hashable, ...]]
    #: number of candidate paths each flow had before rounding
    candidates: Dict[FlowId, int]
    #: realised congestion factor max_e (load_e / capacity_e) given unit
    #: per-flow demand rates (populated by :func:`round_paths` when demands
    #: are supplied)
    congestion_factor: Optional[float] = None


def choose_path(
    decomposition: FlowDecomposition, rng: random.Random
) -> PathFlow:
    """Pick one path of a decomposition with value-proportional probability."""
    if not decomposition.paths:
        raise ValueError(
            f"no paths to choose from for commodity "
            f"{decomposition.source!r} -> {decomposition.sink!r}"
        )
    values = [p.value for p in decomposition.paths]
    total = sum(values)
    pick = rng.random() * total
    acc = 0.0
    for path_flow in decomposition.paths:
        acc += path_flow.value
        if pick <= acc:
            return path_flow
    return decomposition.paths[-1]


def round_paths(
    decompositions: Mapping[FlowId, FlowDecomposition],
    network: Optional[Network] = None,
    demands: Optional[Mapping[FlowId, float]] = None,
    seed: Optional[int] = None,
) -> RoundingOutcome:
    """Select one path per connection request by randomized rounding.

    Parameters
    ----------
    decompositions:
        Flow decomposition per flow id.
    network, demands:
        When both are given the realised congestion factor (per-edge demand
        divided by capacity, maximised over edges) is computed, matching the
        quantity bounded by the Chernoff argument in Section 2.2.
    seed:
        Seed for the selection; rounding is deterministic given the seed.
    """
    rng = random.Random(seed)
    chosen: Dict[FlowId, Tuple[Hashable, ...]] = {}
    candidates: Dict[FlowId, int] = {}
    for fid in sorted(decompositions.keys()):
        decomposition = decompositions[fid]
        candidates[fid] = decomposition.num_paths
        chosen[fid] = choose_path(decomposition, rng).path
    congestion = None
    if network is not None and demands is not None:
        congestion = congestion_after_rounding(chosen, network, demands)
    return RoundingOutcome(
        paths=chosen, candidates=candidates, congestion_factor=congestion
    )


def thickest_paths(
    decompositions: Mapping[FlowId, FlowDecomposition],
    network: Optional[Network] = None,
    demands: Optional[Mapping[FlowId, float]] = None,
    tie_tolerance: float = 0.01,
) -> RoundingOutcome:
    """Deterministic path selection: the thickest decomposition path per flow.

    This is the selection rule the paper's own implementation effectively uses
    (Section 4.2: the decomposition "tries to minimize the number of paths per
    flow by finding the thickest paths", and on the fat-tree it returns a
    single path per flow).  When several paths carry nearly the same value
    (within ``tie_tolerance`` relatively), the one adding the least to the
    current maximum edge utilisation is picked, so near-ties spread load.

    Flows are processed in decreasing demand order, mirroring the greedy
    load-balancing heuristics it is compared against.
    """
    load: Dict[Edge, float] = {}
    chosen: Dict[FlowId, Tuple[Hashable, ...]] = {}
    candidates: Dict[FlowId, int] = {}

    def utilisation(path: Sequence[Hashable], demand: float) -> float:
        worst = 0.0
        for edge in path_edges(list(path)):
            cap = network.capacity(*edge) if network is not None else 1.0
            worst = max(worst, load.get(edge, 0.0) + demand / cap)
        return worst

    order = sorted(
        decompositions.keys(),
        key=lambda fid: (-(demands or {}).get(fid, 0.0), fid),
    )
    for fid in order:
        decomposition = decompositions[fid]
        candidates[fid] = decomposition.num_paths
        if not decomposition.paths:
            raise ValueError(
                f"no paths to choose from for commodity "
                f"{decomposition.source!r} -> {decomposition.sink!r}"
            )
        best_value = max(p.value for p in decomposition.paths)
        near_best = [
            p for p in decomposition.paths
            if p.value >= best_value * (1.0 - tie_tolerance)
        ]
        demand = (demands or {}).get(fid, 0.0)
        pick = min(
            near_best,
            key=lambda p: (utilisation(p.path, demand), p.length, p.path),
        )
        chosen[fid] = pick.path
        if demand > 0:
            for edge in path_edges(list(pick.path)):
                cap = network.capacity(*edge) if network is not None else 1.0
                load[edge] = load.get(edge, 0.0) + demand / cap
    congestion = None
    if network is not None and demands is not None:
        congestion = congestion_after_rounding(chosen, network, demands)
    return RoundingOutcome(
        paths=chosen, candidates=candidates, congestion_factor=congestion
    )


def congestion_after_rounding(
    paths: Mapping[FlowId, Sequence[Hashable]],
    network: Network,
    demands: Mapping[FlowId, float],
) -> float:
    """Max over edges of (total demand routed through the edge) / capacity."""
    loads: Dict[Edge, float] = {}
    for fid, path in paths.items():
        demand = float(demands.get(fid, 0.0))
        for edge in path_edges(list(path)):
            loads[edge] = loads.get(edge, 0.0) + demand
    factor = 0.0
    for edge, load in loads.items():
        factor = max(factor, load / network.capacity(*edge))
    return factor


def chernoff_congestion_bound(num_edges: int, failure_probability: float = 0.01) -> float:
    """The ``1 + delta`` blow-up the Section-2.2 analysis tolerates.

    Solves (numerically, by doubling + bisection) for the smallest ``delta``
    with ``|E| * (e^delta / (1+delta)^(1+delta)) <= failure_probability``,
    which is ``Theta(log |E| / log log |E|)`` — the theoretical worst case the
    benchmarks compare measured congestion against.
    """
    if num_edges < 1:
        raise ValueError("need at least one edge")
    if not (0.0 < failure_probability < 1.0):
        raise ValueError("failure probability must lie in (0, 1)")

    def tail(delta: float) -> float:
        return num_edges * math.exp(delta - (1.0 + delta) * math.log1p(delta))

    lo, hi = 0.0, 1.0
    while tail(hi) > failure_probability:
        hi *= 2.0
        if hi > 1e6:  # pragma: no cover - defensive
            return hi
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if tail(mid) > failure_probability:
            lo = mid
        else:
            hi = mid
    return 1.0 + hi
