"""Vectorized emission of the shared completion-time LP block.

The circuit LPs of Sections 2.1 and 2.2 share the "reformulation" skeleton:
per flow ``(i, j)`` the interval fractions ``("x", i, j, ell)`` and the
completion proxy ``("c", i, j)``, per coflow the dummy-flow proxy
``("C", i)`` carrying the weight, and the constraint families

* **deliver** — ``sum_ell x = 1`` (``==``),
* **completion** — ``sum_ell tau_ell * x <= c`` (``<=``),
* **coflow-last** — ``c <= C`` (``<=``),
* **transfer** — ``c >= release + size / bottleneck`` (``>=``, sized flows),
* **release** — ``x_ell = 0`` for intervals closing before release (``==``).

This module emits that skeleton two ways on top of :mod:`repro.lp`:

* :func:`add_completion_structure_bulk` — block emission through
  :meth:`LinearProgram.add_variables` / ``add_constraints_coo`` (the hot
  path), returning a :class:`CompletionLayout` describing where everything
  landed so solution extraction can read contiguous slices; and
* :func:`add_completion_structure_scalar` — the legacy one-variable /
  one-constraint-at-a-time emission, kept as the reference implementation for
  the LP-equivalence regression tests and the assembly benchmark.

Both paths emit variables and rows in the identical order, so the matrices
they produce are numerically identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.intervals import IntervalGrid
from ..lp import LinearProgram, LPSolution, stacked_aranges

__all__ = [
    "CompletionLayout",
    "add_completion_variables_bulk",
    "add_completion_variables_scalar",
    "add_core_families_bulk",
    "add_completion_structure_bulk",
    "add_completion_structure_scalar",
    "extract_completion",
]


@dataclass
class CompletionLayout:
    """Column layout of the completion block (indices into the LP)."""

    #: flows in ``instance.iter_flows()`` order
    flow_ids: List[FlowId]
    #: number of intervals L
    L: int
    #: first column of the whole x/c block
    xc_start: int
    #: first column of each flow's ``[x_0 .. x_{L-1}, c]`` block
    xc_base: np.ndarray
    #: column of each flow's ``c`` proxy
    c_cols: np.ndarray
    #: first column of the coflow ``C`` block
    C_start: int
    num_coflows: int
    #: interval left endpoints / lengths (length L)
    lefts: np.ndarray
    lengths: np.ndarray
    #: per-flow sizes and "has positive size" mask
    sizes: np.ndarray
    active: np.ndarray

    @property
    def num_flows(self) -> int:
        return len(self.flow_ids)

    def x_cols(self, flow_pos: int) -> np.ndarray:
        """Columns of ``x[flow, 0..L-1]`` for one flow position."""
        return np.arange(self.xc_base[flow_pos], self.xc_base[flow_pos] + self.L)


def _grid_arrays(grid: IntervalGrid) -> Tuple[np.ndarray, np.ndarray]:
    boundaries = grid.boundaries
    return boundaries[:-1].copy(), np.diff(boundaries)


def add_completion_variables_bulk(
    lp: LinearProgram, instance: CoflowInstance, grid: IntervalGrid
) -> CompletionLayout:
    """Register the ``x``/``c``/``C`` variable blocks and return the layout.

    Shared by the circuit builders and the packet given-paths builder, whose
    constraint families differ but whose variable skeleton is identical.
    """
    L = grid.num_intervals
    B = L + 1
    lefts, lengths = _grid_arrays(grid)
    flows = list(instance.iter_flows())
    F = len(flows)

    # ---- variables: per flow [x_0..x_{L-1}, c], then the coflow C block.
    keys: List = []
    for i, j, _flow in flows:
        keys.extend(("x", i, j, ell) for ell in range(L))
        keys.append(("c", i, j))
    upper = np.tile(np.concatenate((np.ones(L), [np.inf])), F) if F else np.zeros(0)
    xc_range = lp.add_variables(keys, lower=0.0, upper=upper)
    weights = np.asarray([c.weight for c in instance.coflows], dtype=float)
    C_range = lp.add_variables(
        [("C", i) for i in range(len(instance.coflows))],
        lower=0.0,
        objective=weights,
    )

    xc_base = xc_range.start + np.arange(F, dtype=np.int64) * B
    sizes = np.asarray([f.size for _i, _j, f in flows], dtype=float)
    return CompletionLayout(
        flow_ids=[(i, j) for i, j, _f in flows],
        L=L,
        xc_start=xc_range.start,
        xc_base=xc_base,
        c_cols=xc_base + L,
        C_start=C_range.start,
        num_coflows=len(instance.coflows),
        lefts=lefts,
        lengths=lengths,
        sizes=sizes,
        active=sizes > 0,
    )


def add_completion_variables_scalar(
    lp: LinearProgram, instance: CoflowInstance, grid: IntervalGrid
) -> None:
    """Scalar counterpart of :func:`add_completion_variables_bulk`."""
    L = grid.num_intervals
    for i, j, _flow in instance.iter_flows():
        for ell in range(L):
            lp.add_variable(("x", i, j, ell), lower=0.0, upper=1.0)
        lp.add_variable(("c", i, j), lower=0.0)
    for i, coflow in enumerate(instance.coflows):
        lp.add_variable(("C", i), lower=0.0, objective=coflow.weight)


def add_core_families_bulk(
    lp: LinearProgram, instance: CoflowInstance, layout: CompletionLayout
) -> None:
    """Emit the three constraint families every interval LP shares:

    * deliver/arrive — ``sum_ell x[f, ell] == 1``,
    * completion — ``sum_ell tau_ell * x[f, ell] - c[f] <= 0``,
    * coflow-last — ``c[f] - C[coflow(f)] <= 0``.
    """
    L, B, F = layout.L, layout.L + 1, layout.num_flows
    if F == 0:
        return
    coflow_of_flow = np.asarray(
        [i for i, _j, _f in instance.iter_flows()], dtype=np.int64
    )
    x_cols_all = (
        layout.xc_base[:, None] + np.arange(L, dtype=np.int64)[None, :]
    ).ravel()
    lp.add_constraints_coo(
        rows=np.repeat(np.arange(F, dtype=np.int64), L),
        cols=x_cols_all,
        vals=np.ones(F * L),
        senses="==",
        rhs=np.ones(F),
    )
    lp.add_constraints_coo(
        rows=np.repeat(np.arange(F, dtype=np.int64), B),
        cols=layout.xc_start + np.arange(F * B, dtype=np.int64),
        vals=np.tile(np.concatenate((layout.lefts, [-1.0])), F),
        senses="<=",
        rhs=np.zeros(F),
    )
    lp.add_constraints_coo(
        rows=np.repeat(np.arange(F, dtype=np.int64), 2),
        cols=np.column_stack(
            (layout.c_cols, layout.C_start + coflow_of_flow)
        ).ravel(),
        vals=np.tile([1.0, -1.0], F),
        senses="<=",
        rhs=np.zeros(F),
    )


def add_completion_structure_bulk(
    lp: LinearProgram,
    instance: CoflowInstance,
    grid: IntervalGrid,
    transfer_rhs: np.ndarray,
    release_intervals: Optional[np.ndarray] = None,
) -> CompletionLayout:
    """Emit the completion skeleton in vectorized blocks.

    ``transfer_rhs[f]`` is the right-hand side of the transfer strengthening
    for flow position ``f`` (only read where the flow has positive size).
    ``release_intervals[f]``, when given, must equal
    ``grid.release_interval(flow.release_time)`` for flow position ``f`` —
    the incremental assembler passes its per-flow cache here so warm epochs
    skip the per-flow grid search without changing the emitted rows.
    """
    layout = add_completion_variables_bulk(lp, instance, grid)
    flows = list(instance.iter_flows())
    xc_base = layout.xc_base
    c_cols = layout.c_cols
    active = layout.active
    F = layout.num_flows

    if F == 0:
        return layout

    add_core_families_bulk(lp, instance, layout)
    # ---- transfer: c[f] >= release + size / bottleneck (sized flows only).
    if active.any():
        m = int(active.sum())
        lp.add_constraints_coo(
            rows=np.arange(m, dtype=np.int64),
            cols=c_cols[active],
            vals=np.ones(m),
            senses=">=",
            rhs=np.asarray(transfer_rhs, dtype=float)[active],
        )
    # ---- release: x[f, ell] == 0 for ell < release_interval(f).
    if release_intervals is not None:
        first = np.asarray(release_intervals, dtype=np.int64)
    else:
        first = np.asarray(
            [grid.release_interval(f.release_time) for _i, _j, f in flows],
            dtype=np.int64,
        )
    total = int(first.sum())
    if total:
        cols = np.repeat(xc_base, first) + stacked_aranges(first)
        lp.add_constraints_coo(
            rows=np.arange(total, dtype=np.int64),
            cols=cols,
            vals=np.ones(total),
            senses="==",
            rhs=np.zeros(total),
        )
    return layout


def add_completion_structure_scalar(
    lp: LinearProgram,
    instance: CoflowInstance,
    grid: IntervalGrid,
    transfer_rhs: np.ndarray,
) -> None:
    """Legacy scalar emission of the completion skeleton.

    Emits exactly the same variables and rows (in the same order) as
    :func:`add_completion_structure_bulk`, one call at a time; kept as the
    equivalence-test reference and benchmark baseline.
    """
    L = grid.num_intervals
    flows = list(instance.iter_flows())
    add_completion_variables_scalar(lp, instance, grid)

    for i, j, _flow in flows:
        lp.add_constraint(
            {("x", i, j, ell): 1.0 for ell in range(L)}, "==", 1.0,
            name=f"deliver[{i},{j}]",
        )
    for i, j, _flow in flows:
        lp.add_constraint(
            {
                **{("x", i, j, ell): grid.left(ell) for ell in range(L)},
                ("c", i, j): -1.0,
            },
            "<=",
            0.0,
            name=f"completion[{i},{j}]",
        )
    for i, j, _flow in flows:
        lp.add_constraint(
            {("c", i, j): 1.0, ("C", i): -1.0}, "<=", 0.0,
            name=f"coflow-last[{i},{j}]",
        )
    for pos, (i, j, flow) in enumerate(flows):
        if flow.size > 0:
            lp.add_constraint(
                {("c", i, j): 1.0}, ">=", float(transfer_rhs[pos]),
                name=f"transfer[{i},{j}]",
            )
    for i, j, flow in flows:
        first = grid.release_interval(flow.release_time)
        for ell in range(first):
            lp.add_constraint(
                {("x", i, j, ell): 1.0}, "==", 0.0, name=f"release[{i},{j},{ell}]"
            )


def extract_completion(
    solution: LPSolution, layout: CompletionLayout
) -> Tuple[Dict[FlowId, np.ndarray], Dict[FlowId, float], Dict[int, float]]:
    """Read ``(fractions, flow_completion, coflow_completion)`` from a solution
    in three slices instead of one key lookup per variable."""
    F, L = layout.num_flows, layout.L
    xc = (
        solution.take(
            range(layout.xc_start, layout.xc_start + F * (L + 1))
        ).reshape(F, L + 1)
        if F
        else np.zeros((0, L + 1))
    )
    C_vals = solution.take(range(layout.C_start, layout.C_start + layout.num_coflows))
    fractions = {fid: xc[pos, :L].copy() for pos, fid in enumerate(layout.flow_ids)}
    flow_completion = {
        fid: float(xc[pos, L]) for pos, fid in enumerate(layout.flow_ids)
    }
    coflow_completion = {i: float(C_vals[i]) for i in range(layout.num_coflows)}
    return fractions, flow_completion, coflow_completion
