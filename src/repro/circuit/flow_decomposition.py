"""Flow decomposition into paths (Section 2.2 rounding, step "FlowDecomposition").

The LP for circuit coflows without given paths produces, for every connection
request, a fractional single-commodity flow from its source to its sink.  The
rounding step decomposes that flow into a set of source-sink paths carrying
positive value — the classical flow-decomposition theorem (Ahuja, Magnanti &
Orlin).  As in the paper's implementation (Section 4.2), paths are extracted
*thickest first*: each iteration finds the maximum-bottleneck path in the
remaining flow support using the widest-path variant of Dijkstra's algorithm,
peels off its bottleneck value, and repeats.  Cycles carrying flow (which can
appear in LP optima without affecting deliverable volume) are cancelled first.

The module is deliberately independent of the LP code: it operates on a plain
``{edge: value}`` mapping, which also makes it easy to property-test.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["PathFlow", "FlowDecomposition", "decompose_flow", "flow_value"]

Node = Hashable
Edge = Tuple[Node, Node]

#: Flow smaller than this is treated as numerical noise and dropped.
FLOW_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PathFlow:
    """One decomposed path and the amount of flow it carries."""

    path: Tuple[Node, ...]
    value: float

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("a path flow needs at least two nodes")
        if self.value <= 0:
            raise ValueError("path flow value must be positive")

    @property
    def edges(self) -> List[Edge]:
        return list(zip(self.path[:-1], self.path[1:]))

    @property
    def length(self) -> int:
        """Number of hops."""
        return len(self.path) - 1


@dataclass
class FlowDecomposition:
    """The result of decomposing a single-commodity flow."""

    source: Node
    sink: Node
    paths: List[PathFlow]
    #: flow remaining on edges after extraction (cycles / numerical residue)
    residual: Dict[Edge, float]

    @property
    def total_value(self) -> float:
        """Total source-to-sink flow carried by the extracted paths."""
        return float(sum(p.value for p in self.paths))

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def edge_loads(self) -> Dict[Edge, float]:
        """Per-edge flow implied by the extracted paths (for conservation checks)."""
        loads: Dict[Edge, float] = {}
        for pf in self.paths:
            for edge in pf.edges:
                loads[edge] = loads.get(edge, 0.0) + pf.value
        return loads

    def probabilities(self) -> List[float]:
        """Path selection probabilities for randomized rounding (value-proportional)."""
        total = self.total_value
        if total <= 0:
            raise ValueError("decomposition carries no flow")
        return [p.value / total for p in self.paths]


def flow_value(flow: Mapping[Edge, float], node: Node) -> float:
    """Net outgoing flow at ``node`` (outflow minus inflow)."""
    out = sum(v for (u, _), v in flow.items() if u == node)
    inc = sum(v for (_, w), v in flow.items() if w == node)
    return out - inc


def _widest_path(
    flow: Mapping[Edge, float], source: Node, sink: Node
) -> Optional[List[Node]]:
    """Maximum-bottleneck path from source to sink in the flow support graph."""
    adjacency: Dict[Node, List[Tuple[Node, float]]] = {}
    for (u, v), value in flow.items():
        if value > FLOW_TOLERANCE:
            adjacency.setdefault(u, []).append((v, value))
    best: Dict[Node, float] = {source: float("inf")}
    parent: Dict[Node, Node] = {}
    heap: List[Tuple[float, int, Node]] = [(-float("inf"), 0, source)]
    counter = 1
    visited = set()
    while heap:
        neg_width, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == sink:
            break
        width = -neg_width
        for nxt, value in adjacency.get(node, []):
            if nxt in visited:
                continue
            cand = min(width, value)
            if cand > best.get(nxt, 0.0):
                best[nxt] = cand
                parent[nxt] = node
                heapq.heappush(heap, (-cand, counter, nxt))
                counter += 1
    if sink not in best:
        return None
    path = [sink]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def _cancel_cycles(flow: Dict[Edge, float]) -> None:
    """Remove flow circulating on cycles (it never reaches the sink).

    Repeatedly finds a cycle in the positive-flow support and subtracts its
    bottleneck value.  LP optima for completion-time objectives rarely contain
    cycles, but randomized tests do construct them.
    """
    import networkx as nx

    while True:
        support = nx.DiGraph()
        for (u, v), value in flow.items():
            if value > FLOW_TOLERANCE:
                support.add_edge(u, v)
        try:
            cycle_edges = nx.find_cycle(support, orientation="original")
        except nx.NetworkXNoCycle:
            return
        edges = [(u, v) for u, v, _ in cycle_edges]
        bottleneck = min(flow[e] for e in edges)
        for e in edges:
            flow[e] -= bottleneck
            if flow[e] <= FLOW_TOLERANCE:
                flow[e] = 0.0


def decompose_flow(
    flow: Mapping[Edge, float],
    source: Node,
    sink: Node,
    max_paths: Optional[int] = None,
    tolerance: float = FLOW_TOLERANCE,
) -> FlowDecomposition:
    """Decompose a single-commodity edge flow into thickest-first paths.

    Parameters
    ----------
    flow:
        ``{(u, v): value}`` with non-negative values.
    source, sink:
        Commodity endpoints.
    max_paths:
        Optional cap on the number of extracted paths (the remaining flow is
        reported in ``residual``).  By flow-decomposition theory at most
        ``|support edges|`` paths are ever needed, which is also the hard cap.
    tolerance:
        Flow below this value is treated as zero.

    Returns
    -------
    FlowDecomposition
        Paths with positive values plus whatever flow could not be routed
        source-to-sink (cycle remnants and numerical residue).
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    working: Dict[Edge, float] = {
        e: float(v) for e, v in flow.items() if float(v) > tolerance
    }
    for (u, v) in working:
        if u == v:
            raise ValueError(f"flow contains a self-loop {u!r}")
    _cancel_cycles(working)

    hard_cap = len(working) + 1
    cap = hard_cap if max_paths is None else min(max_paths, hard_cap)
    paths: List[PathFlow] = []
    for _ in range(cap):
        remaining = {e: v for e, v in working.items() if v > tolerance}
        if not remaining:
            break
        path = _widest_path(remaining, source, sink)
        if path is None:
            break
        edges = list(zip(path[:-1], path[1:]))
        bottleneck = min(working[e] for e in edges)
        if bottleneck <= tolerance:
            break
        paths.append(PathFlow(path=tuple(path), value=bottleneck))
        for e in edges:
            working[e] -= bottleneck
            if working[e] <= tolerance:
                working[e] = 0.0
    residual = {e: v for e, v in working.items() if v > tolerance}
    return FlowDecomposition(source=source, sink=sink, paths=paths, residual=residual)
