"""Constant-factor packet routing + scheduling for makespan (Srinivasan–Teo substitute).

Section 3.2 of the paper schedules the packets assigned to each interval with
the algorithm of Srinivasan and Teo [28], which achieves a makespan within a
constant factor of the optimum (Theorem 9) by LP rounding against the
congestion + dilation lower bound.  The exact constants of that construction
(and of the Leighton–Maggs–Rao schedules it builds on) are far outside what a
reproduction can implement usefully, so — as documented in DESIGN.md — this
module substitutes the classical practical recipe that exercises the same
code path and achieves the same asymptotics on every workload we generate:

1. **Routing** (paths not given): each packet picks, among its candidate
   shortest paths, the one minimising the resulting maximum edge congestion
   (greedy minimisation of the congestion term ``C``); shortest paths keep
   the dilation term ``D`` minimal.
2. **Scheduling**: packets get independent uniformly random initial delays in
   ``[0, C)`` and are then list-scheduled greedily
   (:func:`repro.packet.scheduling.list_schedule_packets`); the random delays
   spread contention so the realised makespan stays ``O(C + D)``.

:func:`route_and_schedule` returns the schedule together with the congestion
and dilation of the chosen paths, so callers (and the tests) can verify the
``makespan <= constant * (C + D)`` guarantee empirically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges
from ..core.schedule import PacketSchedule
from .scheduling import congestion, dilation, list_schedule_packets

__all__ = ["RoutedPackets", "route_packets", "route_and_schedule"]

Edge = Tuple[Hashable, Hashable]


@dataclass
class RoutedPackets:
    """Routing produced for a set of packets plus its quality measures."""

    paths: Dict[FlowId, Tuple[Hashable, ...]]
    congestion: int
    dilation: int

    @property
    def lower_bound(self) -> int:
        """``max(C, D)`` — every schedule needs at least this many steps."""
        return max(self.congestion, self.dilation)


def route_packets(
    instance: CoflowInstance,
    network: Network,
    max_paths: int = 16,
    seed: Optional[int] = None,
    preferred: Optional[Mapping[FlowId, Sequence[Hashable]]] = None,
) -> RoutedPackets:
    """Choose one shortest path per packet, greedily minimising congestion.

    ``preferred`` supplies externally chosen paths (e.g. from LP flow
    decomposition) that are kept as-is; remaining packets are routed greedily
    in random order (seeded, hence reproducible).
    """
    rng = random.Random(seed)
    load: Dict[Edge, int] = {}
    paths: Dict[FlowId, Tuple[Hashable, ...]] = {}

    def commit(fid: FlowId, path: Sequence[Hashable]) -> None:
        paths[fid] = tuple(path)
        for e in path_edges(list(path)):
            load[e] = load.get(e, 0) + 1

    if preferred:
        for fid, path in preferred.items():
            commit(fid, path)

    pending = [
        (i, j, flow)
        for i, j, flow in instance.iter_flows()
        if (i, j) not in paths
    ]
    rng.shuffle(pending)
    cache: Dict[Tuple[Hashable, Hashable], List[List[Hashable]]] = {}
    for i, j, flow in pending:
        key = (flow.source, flow.destination)
        if key not in cache:
            cache[key] = network.candidate_paths(*key, max_paths=max_paths)
        best: Optional[Sequence[Hashable]] = None
        best_cost: Optional[Tuple[int, int, int]] = None
        for candidate in cache[key]:
            edges = path_edges(candidate)
            worst = max(load.get(e, 0) for e in edges) + 1
            total = sum(load.get(e, 0) for e in edges)
            # Tie-break the bottleneck load by the total load so packets
            # spread over equal-cost paths even when an unavoidable first or
            # last hop dominates the maximum.
            ranking = (worst, total, len(candidate))
            if best_cost is None or ranking < best_cost:
                best_cost = ranking
                best = candidate
        assert best is not None
        commit((i, j), best)
    return RoutedPackets(
        paths=paths, congestion=congestion(paths), dilation=dilation(paths)
    )


def route_and_schedule(
    instance: CoflowInstance,
    network: Network,
    max_paths: int = 16,
    seed: Optional[int] = 0,
    preferred: Optional[Mapping[FlowId, Sequence[Hashable]]] = None,
    priority: Optional[Mapping[FlowId, float]] = None,
) -> Tuple[RoutedPackets, PacketSchedule]:
    """Route (if needed) and schedule a set of packets to near-minimal makespan.

    Random initial delays in ``[0, C)`` spread the start times; the greedy
    list scheduler then resolves residual contention.  The returned schedule
    is validated feasible.
    """
    routing = route_packets(
        instance, network, max_paths=max_paths, seed=seed, preferred=preferred
    )
    rng = random.Random(None if seed is None else seed + 1)
    spread = max(routing.congestion, 1)
    delays = {fid: rng.randrange(spread) for fid in routing.paths}
    schedule = list_schedule_packets(
        instance,
        routing.paths,
        priority=priority,
        initial_delays=delays,
    )
    schedule.validate(instance, network)
    return routing, schedule
