"""Packet-based coflow scheduling (Section 3 of the paper)."""

from .algorithm import PacketSchedulingOutcome, schedule_packet_coflows
from .given_paths import (
    PacketGivenPathsLP,
    PacketGivenPathsRelaxation,
    PacketGivenPathsScheduler,
)
from .routing import PacketRoutingLP, PacketRoutingRelaxation, PacketRoutingScheduler
from .scheduling import congestion, dilation, list_schedule_packets
from .srinivasan_teo import RoutedPackets, route_and_schedule, route_packets
from .time_expanded import TimeExpandedGraph

__all__ = [
    "TimeExpandedGraph",
    "congestion",
    "dilation",
    "list_schedule_packets",
    "RoutedPackets",
    "route_packets",
    "route_and_schedule",
    "PacketGivenPathsLP",
    "PacketGivenPathsRelaxation",
    "PacketGivenPathsScheduler",
    "PacketRoutingLP",
    "PacketRoutingRelaxation",
    "PacketRoutingScheduler",
    "PacketSchedulingOutcome",
    "schedule_packet_coflows",
]
