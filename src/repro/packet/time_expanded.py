"""Time-expanded graphs (Section 3.2, Figure 2).

Given a directed network ``G`` and a horizon ``T``, the time-expanded graph
``G^T`` (Ford & Fulkerson) has a node ``(v, t)`` for every network node ``v``
and every time step ``0 <= t <= T``, and two kinds of edges:

* **movement edges** ``((u, t), (v, t+1))`` for every network edge ``(u, v)``
  — a packet crossing the edge during step ``t``;
* **queue edges** ``((v, t), (v, t+1))`` — a packet waiting at ``v`` during
  step ``t``.

Routing a packet from ``s`` (released at ``r``) to ``d`` arriving at time
``t`` corresponds to an ``(s, r) -> (d, t)`` path in ``G^T``.  Movement edges
have unit capacity (one packet per edge per step); queue edges are
uncapacitated (nodes may buffer arbitrarily many packets, as in the paper's
model where only edges are contended).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..core.network import Network

__all__ = ["TimeExpandedGraph"]

Node = Hashable
TNode = Tuple[Node, int]
TEdge = Tuple[TNode, TNode]


@dataclass(frozen=True)
class TimeExpandedGraph:
    """The time expansion ``G^T`` of a network over ``T`` steps."""

    network: Network
    horizon: int

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be at least 1 step")

    # ---------------------------------------------------------------- queries
    def node(self, v: Node, t: int) -> TNode:
        """The time-expanded copy ``(v, t)``; bounds-checked."""
        if not self.network.has_node(v):
            raise ValueError(f"node {v!r} is not in the base network")
        if not (0 <= t <= self.horizon):
            raise ValueError(f"time stamp {t} outside [0, {self.horizon}]")
        return (v, t)

    @property
    def num_nodes(self) -> int:
        return self.network.num_nodes * (self.horizon + 1)

    @property
    def num_movement_edges(self) -> int:
        return self.network.num_edges * self.horizon

    @property
    def num_queue_edges(self) -> int:
        return self.network.num_nodes * self.horizon

    def movement_edges(self, t: Optional[int] = None) -> Iterator[TEdge]:
        """Movement edges, optionally only those departing at step ``t``."""
        steps = range(self.horizon) if t is None else [t]
        for step in steps:
            if not (0 <= step < self.horizon):
                raise ValueError(f"step {step} outside [0, {self.horizon})")
            for u, v in self.network.edges():
                yield ((u, step), (v, step + 1))

    def queue_edges(self, t: Optional[int] = None) -> Iterator[TEdge]:
        """Queue (waiting) edges, optionally only those departing at step ``t``."""
        steps = range(self.horizon) if t is None else [t]
        for step in steps:
            if not (0 <= step < self.horizon):
                raise ValueError(f"step {step} outside [0, {self.horizon})")
            for v in self.network.nodes():
                yield ((v, step), (v, step + 1))

    def edges(self) -> Iterator[TEdge]:
        """All edges of ``G^T`` (movement first, then queue edges)."""
        yield from self.movement_edges()
        yield from self.queue_edges()

    def out_edges(self, tnode: TNode) -> List[TEdge]:
        """Outgoing edges of a time-expanded node."""
        v, t = tnode
        if t >= self.horizon:
            return []
        result: List[TEdge] = [((v, t), (v, t + 1))]
        for _, w in self.network.out_edges(v):
            result.append(((v, t), (w, t + 1)))
        return result

    def in_edges(self, tnode: TNode) -> List[TEdge]:
        """Incoming edges of a time-expanded node."""
        v, t = tnode
        if t <= 0:
            return []
        result: List[TEdge] = [((v, t - 1), (v, t))]
        for u, _ in self.network.in_edges(v):
            result.append(((u, t - 1), (v, t)))
        return result

    @staticmethod
    def is_queue_edge(edge: TEdge) -> bool:
        """Whether a ``G^T`` edge is a waiting (queue) edge."""
        (u, _), (v, _) = edge
        return u == v

    @staticmethod
    def collapse_path(tpath: Sequence[TNode]) -> List[Node]:
        """Project a ``G^T`` path back to ``G`` by dropping time stamps and waits."""
        nodes: List[Node] = []
        for v, _t in tpath:
            if not nodes or nodes[-1] != v:
                nodes.append(v)
        return nodes

    @staticmethod
    def path_departure_times(tpath: Sequence[TNode]) -> List[int]:
        """Departure step of each *movement* hop of a ``G^T`` path."""
        times: List[int] = []
        for (u, t), (v, _t2) in zip(tpath[:-1], tpath[1:]):
            if u != v:
                times.append(t)
        return times
