"""Discrete-time packet scheduling primitives.

Shared by both packet-model algorithms (Sections 3.1 and 3.2):

* :func:`list_schedule_packets` — store-and-forward list scheduling: packets
  move along fixed paths in discrete steps; when several packets contend for
  the same edge in the same step, the one with the highest priority wins and
  the rest wait.  This is the classical greedy that, combined with good
  priorities and routes, achieves makespans close to the congestion+dilation
  lower bound; it is the executable back-end of both the job-shop algorithm
  (paths given) and the per-interval Srinivasan–Teo substitute (paths not
  given).

* :func:`congestion` / :func:`dilation` — the two quantities every
  packet-scheduling bound is expressed in: the maximum number of paths
  crossing an edge and the maximum path length.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges
from ..core.schedule import PacketSchedule, ScheduleError

__all__ = ["congestion", "dilation", "list_schedule_packets"]

Edge = Tuple[Hashable, Hashable]


def congestion(paths: Mapping[FlowId, Sequence[Hashable]]) -> int:
    """Maximum number of paths that share a single directed edge."""
    loads: Dict[Edge, int] = {}
    for path in paths.values():
        for edge in path_edges(list(path)):
            loads[edge] = loads.get(edge, 0) + 1
    return max(loads.values()) if loads else 0


def dilation(paths: Mapping[FlowId, Sequence[Hashable]]) -> int:
    """Maximum path length (number of hops)."""
    return max((len(path) - 1 for path in paths.values()), default=0)


def list_schedule_packets(
    instance: CoflowInstance,
    paths: Mapping[FlowId, Sequence[Hashable]],
    priority: Optional[Mapping[FlowId, float]] = None,
    initial_delays: Optional[Mapping[FlowId, int]] = None,
    max_steps: Optional[int] = None,
) -> PacketSchedule:
    """Greedy store-and-forward scheduling of unit packets on fixed paths.

    Parameters
    ----------
    instance:
        The packet coflow instance (flow sizes are ignored — each flow is one
        packet; release times are respected).
    paths:
        Fixed path per packet.
    priority:
        Lower value = served first when packets contend for an edge.  Defaults
        to FIFO by (release time, id).
    initial_delays:
        Optional extra delay (in steps) before each packet may leave its
        source — the random delays of the O(congestion + dilation) schedules.
    max_steps:
        Safety cap on the number of simulated steps; defaults to a generous
        bound of ``releases + (congestion + 1) * (dilation + 1) + delays``.

    Returns
    -------
    PacketSchedule
        A feasible schedule (at most one packet per edge per step).
    """
    ids = instance.flow_ids()
    for fid in ids:
        if fid not in paths:
            raise ScheduleError(f"no path supplied for packet {fid}")
    prio = dict(priority) if priority else {}
    delays = dict(initial_delays) if initial_delays else {}

    # Per-packet state: position index along its path, current node.
    edge_lists: Dict[FlowId, List[Edge]] = {
        fid: path_edges(list(paths[fid])) for fid in ids
    }
    position: Dict[FlowId, int] = {fid: 0 for fid in ids}
    ready_time: Dict[FlowId, float] = {
        fid: instance.flow(fid).release_time + delays.get(fid, 0) for fid in ids
    }
    schedule = PacketSchedule()

    remaining = {fid for fid in ids if edge_lists[fid]}
    if max_steps is None:
        cong = congestion(paths)
        dil = dilation(paths)
        max_release = max((instance.flow(fid).release_time for fid in ids), default=0)
        max_delay = max(delays.values(), default=0)
        max_steps = int(max_release + max_delay + (cong + 1) * (dil + 1) + len(ids) + 8)

    def rank(fid: FlowId) -> Tuple[float, float, FlowId]:
        return (prio.get(fid, 0.0), instance.flow(fid).release_time, fid)

    step = 0
    while remaining:
        if step > max_steps:
            raise ScheduleError(
                f"packet list scheduling exceeded {max_steps} steps; "
                "this indicates an internal inconsistency"
            )
        # Packets eligible to move this step, highest priority first.
        movers = sorted(
            (fid for fid in remaining if ready_time[fid] <= step), key=rank
        )
        used_edges: set = set()
        for fid in movers:
            edge = edge_lists[fid][position[fid]]
            if edge in used_edges:
                continue  # blocked this step; waits in queue
            used_edges.add(edge)
            schedule.add_move(fid, step, *edge)
            position[fid] += 1
            if position[fid] >= len(edge_lists[fid]):
                remaining.discard(fid)
        step += 1
    return schedule
