"""Packet-based coflows where paths are not given (Section 3.2).

The algorithm follows the paper's structure:

1. **Reformulation** — each packet becomes a unit of flow injected at its
   source copy ``(s, r)`` of the time-expanded graph ``G^T`` and absorbed at
   some destination copy ``(d, t)``; the split of the unit over arrival times
   ``t`` is fractional in the relaxation.

2. **Time-expanded LP** — the relaxation of (25)-(32).  Per packet we keep a
   flow variable on every ``G^T`` edge reachable after its release, with

   * flow conservation at every intermediate node copy,
   * one unit injected at the source copy,
   * absorption variables ``z[fid, t]`` = flow entering ``(d, t)``,
   * per-step unit capacity on every movement edge (a strengthening of the
     interval-aggregated congestion constraint (28) that is still a valid
     relaxation of integral schedules),
   * completion proxies ``c_fid >= sum_t t * z[fid, t]`` and coflow proxies
     ``C_i >= c_fid``, weighted in the objective.

3. **Rounding** — packets are assigned to powers-of-two arrival intervals by
   the *half-interval* rule (the first interval by which half of the packet's
   fractional arrival mass has landed); the packets of each interval are then
   routed and scheduled together by the Srinivasan–Teo substitute
   (:mod:`repro.packet.srinivasan_teo`), seeded with single paths obtained by
   decomposing each packet's fractional ``G^T`` flow (collapsed to ``G``) and
   rounding it randomly — exactly the per-interval structure of the paper.
   Interval batches run back-to-back, so the completion time of a packet in
   interval ``ell`` is ``O(tau_{ell+1})`` as in equation (37).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.flow_decomposition import decompose_flow
from ..circuit.randomized_rounding import round_paths
from ..core.flows import Coflow, CoflowInstance, Flow, FlowId
from ..core.network import Network
from ..core.schedule import PacketSchedule, ScheduleError
from ..lp import ConstraintBlock, LinearProgram, LPSolution, solve
from .scheduling import list_schedule_packets
from .srinivasan_teo import route_and_schedule
from .time_expanded import TimeExpandedGraph

__all__ = ["PacketRoutingLP", "PacketRoutingRelaxation", "PacketRoutingScheduler"]

Edge = Tuple[Hashable, Hashable]


def _check_packet_instance(instance: CoflowInstance, network: Network) -> None:
    for i, j, flow in instance.iter_flows():
        if abs(flow.size - 1.0) > 1e-9:
            raise ValueError(
                f"packet-based coflows have unit-size flows; flow ({i},{j}) "
                f"has size {flow.size}"
            )
        if abs(flow.release_time - round(flow.release_time)) > 1e-9:
            raise ValueError(
                "packet release times must be integral time steps"
            )
        if not network.has_node(flow.source) or not network.has_node(flow.destination):
            raise ValueError("flow endpoints missing from the network")


def default_horizon(instance: CoflowInstance, network: Network) -> int:
    """A horizon ``T`` guaranteed to admit a feasible schedule.

    Scheduling packets one after another, each needs at most ``diameter``
    steps once started, so ``max release + packets * diameter`` always
    suffices (with a small safety margin).
    """
    diameter = 0
    for _, _, flow in instance.iter_flows():
        diameter = max(
            diameter, network.shortest_path_length(flow.source, flow.destination)
        )
    return int(math.ceil(instance.max_release_time)) + instance.num_flows * max(diameter, 1) + 2


@dataclass
class PacketRoutingRelaxation:
    """Solution of the time-expanded LP."""

    instance: CoflowInstance
    network: Network
    expanded: TimeExpandedGraph
    solution: LPSolution
    #: z[fid] -> arrival-mass per time step (length = horizon + 1)
    arrival_mass: Dict[FlowId, np.ndarray]
    flow_completion: Dict[FlowId, float]
    coflow_completion: Dict[int, float]
    #: per-packet fractional edge volumes collapsed back onto G
    edge_volumes: Dict[FlowId, Dict[Edge, float]]

    @property
    def objective(self) -> float:
        return self.solution.objective

    @property
    def lower_bound(self) -> float:
        """Lemma 7: the LP optimum lower-bounds the optimal objective."""
        return self.solution.objective

    def half_interval(self, fid: FlowId) -> int:
        """Powers-of-two interval containing the packet's half arrival mass."""
        mass = self.arrival_mass[fid]
        cumulative = 0.0
        for t, m in enumerate(mass):
            cumulative += m
            if cumulative >= 0.5 - 1e-9:
                return max(0, int(math.ceil(math.log2(max(t, 1)))))
        raise ScheduleError(f"packet {fid} has arrival mass {cumulative} < 1/2")

    def flow_order(self) -> List[FlowId]:
        return sorted(
            self.arrival_mass.keys(),
            key=lambda fid: (
                self.coflow_completion[fid[0]],
                self.flow_completion[fid],
                fid,
            ),
        )


class PacketRoutingLP:
    """Builder/solver for the time-expanded relaxation of (25)-(32)."""

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        horizon: Optional[int] = None,
    ) -> None:
        _check_packet_instance(instance, network)
        self.instance = instance
        self.network = network
        self.horizon = horizon or default_horizon(instance, network)
        self.expanded = TimeExpandedGraph(network=network, horizon=self.horizon)
        #: per-flow extraction metadata filled in by :meth:`build`
        self._extract: Dict[FlowId, Dict[str, object]] = {}

    # -------------------------------------------------------- reachability
    def _distance_maps(self):
        import networkx as nx

        network = self.network
        distance_cache: Dict[Tuple[Hashable, str], Dict[Hashable, int]] = {}

        def dist_from(node: Hashable) -> Dict[Hashable, int]:
            key = (node, "from")
            if key not in distance_cache:
                distance_cache[key] = dict(
                    nx.single_source_shortest_path_length(network.graph, node)
                )
            return distance_cache[key]

        def dist_to(node: Hashable) -> Dict[Hashable, int]:
            key = (node, "to")
            if key not in distance_cache:
                distance_cache[key] = dict(
                    nx.single_source_shortest_path_length(
                        network.graph.reverse(copy=False), node
                    )
                )
            return distance_cache[key]

        return dist_from, dist_to

    def build(self) -> LinearProgram:
        """Assemble the time-expanded LP through the bulk pipeline.

        Variable discovery (reachability filtering) is inherently per-packet,
        but each packet's variables are registered as one block and every
        constraint row is appended to a :class:`ConstraintBlock` (committed
        in one COO call) instead of building a dict + ``Constraint`` object
        per row.  Column lookups go through small per-packet maps built
        during discovery rather than the global key table.
        """
        instance, network, gt = self.instance, self.network, self.expanded
        T = gt.horizon
        lp = LinearProgram(name="packet-routing-time-expanded")
        self._extract = {}

        # Completion variables.
        c_range = lp.add_variables(
            [("c", i, j) for i, j, _flow in instance.iter_flows()], lower=0.0
        )
        lp.add_variables(
            [("C", i) for i in range(len(instance.coflows))],
            lower=0.0,
            objective=np.asarray([c.weight for c in instance.coflows], dtype=float),
        )
        C_start = c_range.stop
        c_col = {
            fid: c_range.start + pos for pos, fid in enumerate(instance.flow_ids())
        }

        dist_from, dist_to = self._distance_maps()
        infinite = T + 1
        edges = network.edges()
        nodes = network.nodes()

        # Per-packet variable discovery: one add_variables call per packet,
        # plus a per-packet map from G^T movement edge -> global column and a
        # per-(edge, t) capacity registry filled as columns are allocated.
        flow_cols: Dict[FlowId, Dict[Tuple, int]] = {}
        z_ranges: Dict[FlowId, range] = {}
        cap_cols: Dict[Tuple, List[int]] = {}

        for i, j, flow in instance.iter_flows():
            release = int(round(flow.release_time))
            from_src = dist_from(flow.source)
            to_dst = dist_to(flow.destination)
            dst = flow.destination

            def usable(u: Hashable, v: Hashable, t: int) -> bool:
                # departing u at step t, arriving v at t + 1
                if u == dst:
                    return False  # destination copies are absorbing
                if from_src.get(u, infinite) > t - release:
                    return False
                if to_dst.get(v, infinite) > T - (t + 1):
                    return False
                return True

            keys: List[Tuple] = []
            gt_edges: List[Tuple] = []
            moves: List[Optional[Tuple[Hashable, Hashable]]] = []
            for t in range(release, T):
                for u, v in edges:
                    if usable(u, v, t):
                        gt_edge = ((u, t), (v, t + 1))
                        keys.append(("f", i, j, gt_edge))
                        gt_edges.append(gt_edge)
                        moves.append((u, v))
                for v in nodes:
                    if usable(v, v, t):
                        gt_edge = ((v, t), (v, t + 1))
                        keys.append(("f", i, j, gt_edge))
                        gt_edges.append(gt_edge)
                        moves.append(None)  # waiting self-loop
            num_f = len(keys)
            keys.extend(("z", i, j, t) for t in range(release + 1, T + 1))
            block = lp.add_variables(keys, lower=0.0, upper=1.0)
            cols_of = {
                gt_edge: block.start + k for k, gt_edge in enumerate(gt_edges)
            }
            flow_cols[(i, j)] = cols_of
            z_ranges[(i, j)] = range(block.start + num_f, block.stop)
            for gt_edge, move in zip(gt_edges, moves):
                if move is not None:
                    cap_cols.setdefault(gt_edge, []).append(cols_of[gt_edge])
            self._extract[(i, j)] = {
                "f_range": range(block.start, block.start + num_f),
                "moves": moves,
                "z_range": z_ranges[(i, j)],
                "release": release,
            }

        # Flow conservation and absorption per packet, accumulated in one
        # ConstraintBlock (no per-row dicts or Constraint objects).
        block = ConstraintBlock(lp)
        for i, j, flow in instance.iter_flows():
            fid = (i, j)
            release = int(round(flow.release_time))
            src, dst = flow.source, flow.destination
            cols_of = flow_cols[fid]
            z_cols = z_ranges[fid]
            # Unit supply at the source copy (s, release).
            supply_cols = [
                cols_of[edge]
                for edge in gt.out_edges((src, release))
                if edge in cols_of
            ]
            block.add_row(supply_cols, 1.0, "==", 1.0, name=f"supply[{i},{j}]")

            # Conservation at intermediate copies (v, t), v != dst; flow may
            # neither appear nor disappear anywhere but the source copy and
            # the destination copies.
            for t in range(release, T):
                for v in nodes:
                    if v == dst or (v == src and t == release):
                        continue
                    cols: List[int] = []
                    vals: List[float] = []
                    for edge in gt.in_edges((v, t)):
                        col = cols_of.get(edge)
                        if col is not None:
                            cols.append(col)
                            vals.append(1.0)
                    for edge in gt.out_edges((v, t)):
                        col = cols_of.get(edge)
                        if col is not None:
                            cols.append(col)
                            vals.append(-1.0)
                    if cols:
                        block.add_row(cols, vals, "==", 0.0, name=f"cons[{i},{j},{v},{t}]")

            # Absorption: z[t] equals the flow entering the destination copy.
            for t in range(release + 1, T + 1):
                cols = [z_cols[t - (release + 1)]]
                vals = [-1.0]
                for edge in gt.in_edges((dst, t)):
                    col = cols_of.get(edge)
                    if col is not None:
                        cols.append(col)
                        vals.append(1.0)
                block.add_row(cols, vals, "==", 0.0, name=f"absorb[{i},{j},{t}]")
            block.add_row(
                np.arange(z_cols.start, z_cols.stop), 1.0, "==", 1.0,
                name=f"arrive[{i},{j}]",
            )
            # Completion proxies.
            block.add_row(
                np.concatenate(
                    (np.arange(z_cols.start, z_cols.stop), [c_col[fid]])
                ),
                np.concatenate(
                    (np.arange(release + 1, T + 1, dtype=float), [-1.0])
                ),
                "<=",
                0.0,
                name=f"completion[{i},{j}]",
            )
            block.add_row(
                [c_col[fid], C_start + i], [1.0, -1.0], "<=", 0.0,
                name=f"coflow[{i},{j}]",
            )

        # Unit capacity on every movement edge of G^T: the per-(edge, t)
        # column registry was filled during variable discovery, so no key
        # probing is needed here.
        for t in range(T):
            for u, v in edges:
                cols = cap_cols.get(((u, t), (v, t + 1)))
                if cols:
                    block.add_row(
                        cols, 1.0, "<=", 1.0, name=f"cap[{((u, t), (v, t + 1))}]"
                    )
        block.flush()
        return lp

    def build_scalar(self) -> LinearProgram:
        """Legacy scalar assembly (reference for the equivalence tests)."""
        instance, network, gt = self.instance, self.network, self.expanded
        T = gt.horizon
        lp = LinearProgram(name="packet-routing-time-expanded")

        # Completion variables.
        for i, j, _flow in instance.iter_flows():
            lp.add_variable(("c", i, j), lower=0.0)
        for i, coflow in enumerate(instance.coflows):
            lp.add_variable(("C", i), lower=0.0, objective=coflow.weight)

        # Per-packet flow variables on G^T edges.  Only edges the packet can
        # actually use are materialised: the departure node must be reachable
        # from the source copy by the departure time, and the arrival node
        # must still be able to reach the destination within the horizon.
        dist_from, dist_to = self._distance_maps()
        infinite = T + 1

        for i, j, flow in instance.iter_flows():
            release = int(round(flow.release_time))
            from_src = dist_from(flow.source)
            to_dst = dist_to(flow.destination)

            def usable(u: Hashable, v: Hashable, t: int) -> bool:
                # departing u at step t, arriving v at t + 1
                if u == flow.destination:
                    return False  # destination copies are absorbing
                if from_src.get(u, infinite) > t - release:
                    return False
                if to_dst.get(v, infinite) > T - (t + 1):
                    return False
                return True

            for t in range(release, T):
                for u, v in network.edges():
                    if usable(u, v, t):
                        lp.add_variable(("f", i, j, ((u, t), (v, t + 1))), lower=0.0, upper=1.0)
                for v in network.nodes():
                    if usable(v, v, t):
                        lp.add_variable(("f", i, j, ((v, t), (v, t + 1))), lower=0.0, upper=1.0)
            for t in range(release + 1, T + 1):
                lp.add_variable(("z", i, j, t), lower=0.0, upper=1.0)

        def fvar(i: int, j: int, edge: Tuple) -> Optional[Tuple]:
            key = ("f", i, j, edge)
            return key if lp.has_variable(key) else None

        # Flow conservation and absorption per packet.
        for i, j, flow in instance.iter_flows():
            release = int(round(flow.release_time))
            src, dst = flow.source, flow.destination
            # Unit supply at the source copy (s, release).
            supply_terms: Dict[Tuple, float] = {}
            for edge in gt.out_edges((src, release)):
                key = fvar(i, j, edge)
                if key is not None:
                    supply_terms[key] = 1.0
            lp.add_constraint(supply_terms, "==", 1.0, name=f"supply[{i},{j}]")

            # Conservation at intermediate copies (v, t), v != dst; flow may
            # neither appear nor disappear anywhere but the source copy and
            # the destination copies.
            for t in range(release, T):
                for v in network.nodes():
                    if v == dst or (v == src and t == release):
                        continue
                    terms: Dict[Tuple, float] = {}
                    for edge in gt.in_edges((v, t)):
                        key = fvar(i, j, edge)
                        if key is not None:
                            terms[key] = terms.get(key, 0.0) + 1.0
                    for edge in gt.out_edges((v, t)):
                        key = fvar(i, j, edge)
                        if key is not None:
                            terms[key] = terms.get(key, 0.0) - 1.0
                    if terms:
                        lp.add_constraint(terms, "==", 0.0, name=f"cons[{i},{j},{v},{t}]")

            # Absorption: z[t] equals the flow entering the destination copy.
            for t in range(release + 1, T + 1):
                terms = {("z", i, j, t): -1.0}
                for edge in gt.in_edges((dst, t)):
                    key = fvar(i, j, edge)
                    if key is not None:
                        terms[key] = terms.get(key, 0.0) + 1.0
                lp.add_constraint(terms, "==", 0.0, name=f"absorb[{i},{j},{t}]")
            lp.add_constraint(
                {("z", i, j, t): 1.0 for t in range(release + 1, T + 1)},
                "==",
                1.0,
                name=f"arrive[{i},{j}]",
            )
            # Completion proxies.
            lp.add_constraint(
                {
                    **{("z", i, j, t): float(t) for t in range(release + 1, T + 1)},
                    ("c", i, j): -1.0,
                },
                "<=",
                0.0,
                name=f"completion[{i},{j}]",
            )
            lp.add_constraint(
                {("c", i, j): 1.0, ("C", i): -1.0}, "<=", 0.0, name=f"coflow[{i},{j}]"
            )

        # Unit capacity on every movement edge of G^T.
        for t in range(T):
            for u, v in network.edges():
                edge = ((u, t), (v, t + 1))
                terms = {}
                for i, j, _flow in instance.iter_flows():
                    key = fvar(i, j, edge)
                    if key is not None:
                        terms[key] = 1.0
                if terms:
                    lp.add_constraint(terms, "<=", 1.0, name=f"cap[{edge}]")
        return lp

    def relax(self) -> PacketRoutingRelaxation:
        lp = self.build()
        solution = solve(lp)
        T = self.expanded.horizon
        arrival_mass: Dict[FlowId, np.ndarray] = {}
        flow_completion: Dict[FlowId, float] = {}
        edge_volumes: Dict[FlowId, Dict[Edge, float]] = {}
        for i, j, _flow in self.instance.iter_flows():
            fid = (i, j)
            meta = self._extract[fid]
            release = meta["release"]
            mass = np.zeros(T + 1)
            z_vals = solution.take(meta["z_range"])
            mass[release + 1 : T + 1] = z_vals
            arrival_mass[fid] = mass
            flow_completion[fid] = solution.value(("c", i, j))
            # Collapse the per-packet G^T flow back onto G: only movement
            # variables (non-waiting) with significant value contribute.
            f_vals = solution.take(meta["f_range"])
            moves = meta["moves"]
            volumes: Dict[Edge, float] = {}
            for idx in np.nonzero(f_vals > 1e-9)[0]:
                move = moves[idx]
                if move is not None:
                    volumes[move] = volumes.get(move, 0.0) + float(f_vals[idx])
            edge_volumes[fid] = volumes
        coflow_completion = {
            i: solution.value(("C", i)) for i in range(len(self.instance.coflows))
        }
        return PacketRoutingRelaxation(
            instance=self.instance,
            network=self.network,
            expanded=self.expanded,
            solution=solution,
            arrival_mass=arrival_mass,
            flow_completion=flow_completion,
            coflow_completion=coflow_completion,
            edge_volumes=edge_volumes,
        )


@dataclass
class PacketRoutingResult:
    """Output of the Section-3.2 algorithm."""

    relaxation: PacketRoutingRelaxation
    schedule: PacketSchedule
    #: interval index each packet was assigned to by the half-interval rule
    assigned_intervals: Dict[FlowId, int]
    #: single path chosen per packet
    paths: Dict[FlowId, Tuple[Hashable, ...]]

    @property
    def objective(self) -> float:
        return self.schedule.weighted_completion_time(self.relaxation.instance)

    @property
    def lower_bound(self) -> float:
        return self.relaxation.lower_bound

    @property
    def approximation_ratio(self) -> float:
        lb = self.lower_bound
        return self.objective / lb if lb > 0 else 1.0


class PacketRoutingScheduler:
    """Joint routing + scheduling of packet coflows (paths not given)."""

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        horizon: Optional[int] = None,
        seed: Optional[int] = 0,
    ) -> None:
        _check_packet_instance(instance, network)
        self.instance = instance
        self.network = network
        self.seed = seed
        self._lp = PacketRoutingLP(instance, network, horizon=horizon)

    def relax(self) -> PacketRoutingRelaxation:
        return self._lp.relax()

    def schedule(
        self, relaxation: Optional[PacketRoutingRelaxation] = None
    ) -> PacketRoutingResult:
        """Half-interval assignment + per-interval routing and scheduling."""
        relaxation = relaxation or self.relax()
        instance, network = self.instance, self.network

        # 1. Single path per packet: decompose the collapsed LP flow and round.
        decompositions = {}
        for i, j, flow in instance.iter_flows():
            fid = (i, j)
            volumes = relaxation.edge_volumes.get(fid, {})
            if volumes:
                decompositions[fid] = decompose_flow(
                    volumes, source=flow.source, sink=flow.destination
                )
        rounded = round_paths(decompositions, seed=self.seed)
        paths: Dict[FlowId, Tuple[Hashable, ...]] = dict(rounded.paths)
        for i, j, flow in instance.iter_flows():
            # Fallback (e.g. numerically empty decomposition): shortest path.
            paths.setdefault((i, j), tuple(network.shortest_path(flow.source, flow.destination)))

        # 2. Assign packets to half-intervals and batch them.
        assigned: Dict[FlowId, int] = {
            fid: relaxation.half_interval(fid) for fid in instance.flow_ids()
        }
        batches: Dict[int, List[FlowId]] = {}
        for fid, interval in assigned.items():
            batches.setdefault(interval, []).append(fid)

        # 3. Route-and-schedule each batch with the Srinivasan-Teo substitute,
        #    running batches back-to-back.
        final = PacketSchedule()
        offset = 0
        priority = {
            fid: float(rank) for rank, fid in enumerate(relaxation.flow_order())
        }
        for interval in sorted(batches):
            batch_ids = sorted(batches[interval])
            # Build a sub-instance whose release times are relative to the batch start.
            index_map: Dict[FlowId, FlowId] = {}
            sub_coflows: List[Coflow] = []
            for new_i, fid in enumerate(batch_ids):
                flow = instance.flow(fid)
                release = max(0.0, flow.release_time - offset)
                sub_coflows.append(
                    Coflow(
                        flows=(
                            Flow(
                                source=flow.source,
                                destination=flow.destination,
                                size=1.0,
                                release_time=float(int(math.ceil(release))),
                            ),
                        ),
                        weight=1.0,
                    )
                )
                index_map[(new_i, 0)] = fid
            sub_instance = CoflowInstance(coflows=sub_coflows)
            preferred = {
                (new_i, 0): paths[index_map[(new_i, 0)]]
                for new_i in range(len(batch_ids))
            }
            sub_priority = {
                (new_i, 0): priority[index_map[(new_i, 0)]]
                for new_i in range(len(batch_ids))
            }
            _, sub_schedule = route_and_schedule(
                sub_instance,
                network,
                seed=None if self.seed is None else self.seed + interval,
                preferred=preferred,
                priority=sub_priority,
            )
            for sub_fid, original in index_map.items():
                for move in sub_schedule.moves(sub_fid):
                    final.add_move(original, move.time + offset, *move.edge)
            offset += sub_schedule.makespan() + 1

        final.validate(instance, network)
        return PacketRoutingResult(
            relaxation=relaxation,
            schedule=final,
            assigned_intervals=assigned,
            paths=paths,
        )
