"""Packet-based coflows with given paths (Section 3.1).

With fixed paths, packet coflow scheduling is a unit-processing-time job-shop
problem: each packet is a job, the edges of its path are the machines it must
visit in order, and a machine serves one job per step.  The paper invokes the
Queyranne–Sviridenko O(1)-approximation for the generalized min-sum job-shop
(Theorem 6).  This module implements the same interval-indexed-LP +
list-scheduling recipe in executable form:

1. an interval-indexed LP over powers-of-two intervals lower-bounds the
   optimum (the job-shop analogue of the Section-3.2 LP, with the standard
   congestion and dilation validity constraints); and
2. packets are list-scheduled on their fixed paths in order of their LP
   completion times (:func:`repro.packet.scheduling.list_schedule_packets`),
   which resolves per-edge contention greedily.

The measured objective is compared against the LP lower bound in the tests
and the Table-1 benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.intervals import IntervalGrid
from ..core.network import Network, path_edges
from ..core.schedule import PacketSchedule
from ..lp import LinearProgram, LPSolution, solve
from .scheduling import congestion, dilation, list_schedule_packets

__all__ = ["PacketGivenPathsLP", "PacketGivenPathsRelaxation", "PacketGivenPathsScheduler"]

Edge = Tuple[Hashable, Hashable]


def _check_packet_instance(instance: CoflowInstance, network: Network) -> None:
    for i, j, flow in instance.iter_flows():
        if flow.path is None:
            raise ValueError(
                "packet given-paths scheduling requires a path per packet; "
                "use repro.packet.routing otherwise"
            )
        network.validate_path(flow.path)
        if abs(flow.size - 1.0) > 1e-9:
            raise ValueError(
                f"packet-based coflows have unit-size flows; flow ({i},{j}) "
                f"has size {flow.size}"
            )


def _horizon(instance: CoflowInstance) -> float:
    """Safe schedule-length upper bound: all packets cross all their edges serially."""
    total_hops = sum(len(flow.path) - 1 for _, _, flow in instance.iter_flows())
    return instance.max_release_time + total_hops + 2


@dataclass
class PacketGivenPathsRelaxation:
    """LP relaxation of the fixed-path packet scheduling problem."""

    instance: CoflowInstance
    network: Network
    grid: IntervalGrid
    solution: LPSolution
    fractions: Dict[FlowId, np.ndarray]
    flow_completion: Dict[FlowId, float]
    coflow_completion: Dict[int, float]

    @property
    def objective(self) -> float:
        return self.solution.objective

    @property
    def lower_bound(self) -> float:
        """LP optimum / (1 + eps) — eps = 1, so half the LP optimum (Lemma 7 analogue)."""
        return self.solution.objective / (1.0 + self.grid.epsilon)

    def flow_order(self) -> List[FlowId]:
        return sorted(
            self.fractions.keys(),
            key=lambda fid: (
                self.coflow_completion[fid[0]],
                self.flow_completion[fid],
                fid,
            ),
        )


class PacketGivenPathsLP:
    """Interval-indexed LP lower bound for packets on fixed paths."""

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        epsilon: float = 1.0,
    ) -> None:
        _check_packet_instance(instance, network)
        self.instance = instance
        self.network = network
        self.grid = IntervalGrid(epsilon=epsilon, horizon=_horizon(instance))

    def build(self) -> LinearProgram:
        instance, grid = self.instance, self.grid
        L = grid.num_intervals
        lp = LinearProgram(name="packet-given-paths")

        for i, j, flow in instance.iter_flows():
            for ell in range(L):
                lp.add_variable(("x", i, j, ell), lower=0.0, upper=1.0)
            lp.add_variable(("c", i, j), lower=0.0)
        for i, coflow in enumerate(instance.coflows):
            lp.add_variable(("C", i), lower=0.0, objective=coflow.weight)

        for i, j, flow in instance.iter_flows():
            hops = len(flow.path) - 1
            earliest = flow.release_time + hops  # dilation: must cross each hop
            lp.add_constraint(
                {("x", i, j, ell): 1.0 for ell in range(L)}, "==", 1.0,
                name=f"arrive[{i},{j}]",
            )
            lp.add_constraint(
                {
                    **{("x", i, j, ell): grid.left(ell) for ell in range(L)},
                    ("c", i, j): -1.0,
                },
                "<=",
                0.0,
                name=f"completion[{i},{j}]",
            )
            lp.add_constraint(
                {("c", i, j): 1.0, ("C", i): -1.0}, "<=", 0.0,
                name=f"coflow-last[{i},{j}]",
            )
            # A packet cannot arrive in an interval that closes before its
            # earliest feasible arrival (release + path length).
            for ell in range(L):
                if grid.right(ell) < earliest - 1e-9:
                    lp.add_constraint(
                        {("x", i, j, ell): 1.0}, "==", 0.0,
                        name=f"dilation[{i},{j},{ell}]",
                    )
            # The completion proxy can also never undercut the earliest arrival.
            lp.add_constraint({("c", i, j): 1.0}, ">=", earliest, name=f"lbc[{i},{j}]")

        # Congestion validity: packets that have arrived by the end of
        # interval ell all crossed each shared edge once, and an edge serves
        # at most one packet per step, so at most tau_{ell+1} of them can have
        # finished by then (constraint (28) of the paper).
        edge_users: Dict[Edge, List[FlowId]] = {}
        for i, j, flow in instance.iter_flows():
            for e in path_edges(flow.path):
                edge_users.setdefault(e, []).append((i, j))
        for e, users in edge_users.items():
            for ell in range(L):
                lp.add_constraint(
                    {
                        ("x", i, j, t): 1.0
                        for (i, j) in users
                        for t in range(ell + 1)
                    },
                    "<=",
                    grid.right(ell),
                    name=f"congestion[{e},{ell}]",
                )
        return lp

    def relax(self) -> PacketGivenPathsRelaxation:
        lp = self.build()
        solution = solve(lp)
        L = self.grid.num_intervals
        fractions = {
            (i, j): np.array([solution.value(("x", i, j, ell)) for ell in range(L)])
            for i, j, _f in self.instance.iter_flows()
        }
        flow_completion = {
            (i, j): solution.value(("c", i, j))
            for i, j, _f in self.instance.iter_flows()
        }
        coflow_completion = {
            i: solution.value(("C", i)) for i in range(len(self.instance.coflows))
        }
        return PacketGivenPathsRelaxation(
            instance=self.instance,
            network=self.network,
            grid=self.grid,
            solution=solution,
            fractions=fractions,
            flow_completion=flow_completion,
            coflow_completion=coflow_completion,
        )


@dataclass
class PacketGivenPathsResult:
    """Output of the fixed-path packet coflow scheduler."""

    relaxation: PacketGivenPathsRelaxation
    schedule: PacketSchedule
    congestion: int
    dilation: int

    @property
    def objective(self) -> float:
        return self.schedule.weighted_completion_time(self.relaxation.instance)

    @property
    def lower_bound(self) -> float:
        return self.relaxation.lower_bound

    @property
    def approximation_ratio(self) -> float:
        lb = self.lower_bound
        return self.objective / lb if lb > 0 else 1.0


class PacketGivenPathsScheduler:
    """LP-ordered list scheduling for packet coflows on fixed paths."""

    def __init__(
        self, instance: CoflowInstance, network: Network, epsilon: float = 1.0
    ) -> None:
        _check_packet_instance(instance, network)
        self.instance = instance
        self.network = network
        self._lp = PacketGivenPathsLP(instance, network, epsilon=epsilon)

    def relax(self) -> PacketGivenPathsRelaxation:
        return self._lp.relax()

    def schedule(
        self, relaxation: Optional[PacketGivenPathsRelaxation] = None
    ) -> PacketGivenPathsResult:
        """Solve the LP and list-schedule packets by LP completion order."""
        relaxation = relaxation or self.relax()
        order = relaxation.flow_order()
        priority = {fid: float(rank) for rank, fid in enumerate(order)}
        paths = {
            (i, j): flow.path for i, j, flow in self.instance.iter_flows()
        }
        schedule = list_schedule_packets(self.instance, paths, priority=priority)
        schedule.validate(self.instance, self.network)
        return PacketGivenPathsResult(
            relaxation=relaxation,
            schedule=schedule,
            congestion=congestion(paths),
            dilation=dilation(paths),
        )
