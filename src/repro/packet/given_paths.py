"""Packet-based coflows with given paths (Section 3.1).

With fixed paths, packet coflow scheduling is a unit-processing-time job-shop
problem: each packet is a job, the edges of its path are the machines it must
visit in order, and a machine serves one job per step.  The paper invokes the
Queyranne–Sviridenko O(1)-approximation for the generalized min-sum job-shop
(Theorem 6).  This module implements the same interval-indexed-LP +
list-scheduling recipe in executable form:

1. an interval-indexed LP over powers-of-two intervals lower-bounds the
   optimum (the job-shop analogue of the Section-3.2 LP, with the standard
   congestion and dilation validity constraints); and
2. packets are list-scheduled on their fixed paths in order of their LP
   completion times (:func:`repro.packet.scheduling.list_schedule_packets`),
   which resolves per-edge contention greedily.

The measured objective is compared against the LP lower bound in the tests
and the Table-1 benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from ..circuit._assembly import (
    add_completion_variables_bulk,
    add_completion_variables_scalar,
    add_core_families_bulk,
    extract_completion,
)
from ..core.flows import CoflowInstance, FlowId
from ..core.intervals import IntervalGrid
from ..core.network import Network, path_edges
from ..core.schedule import PacketSchedule
from ..lp import LinearProgram, LPSolution, solve, stacked_aranges
from .scheduling import congestion, dilation, list_schedule_packets

__all__ = ["PacketGivenPathsLP", "PacketGivenPathsRelaxation", "PacketGivenPathsScheduler"]

Edge = Tuple[Hashable, Hashable]


def _check_packet_instance(instance: CoflowInstance, network: Network) -> None:
    for i, j, flow in instance.iter_flows():
        if flow.path is None:
            raise ValueError(
                "packet given-paths scheduling requires a path per packet; "
                "use repro.packet.routing otherwise"
            )
        network.validate_path(flow.path)
        if abs(flow.size - 1.0) > 1e-9:
            raise ValueError(
                f"packet-based coflows have unit-size flows; flow ({i},{j}) "
                f"has size {flow.size}"
            )


def _horizon(instance: CoflowInstance) -> float:
    """Safe schedule-length upper bound: all packets cross all their edges serially."""
    total_hops = sum(len(flow.path) - 1 for _, _, flow in instance.iter_flows())
    return instance.max_release_time + total_hops + 2


@dataclass
class PacketGivenPathsRelaxation:
    """LP relaxation of the fixed-path packet scheduling problem."""

    instance: CoflowInstance
    network: Network
    grid: IntervalGrid
    solution: LPSolution
    fractions: Dict[FlowId, np.ndarray]
    flow_completion: Dict[FlowId, float]
    coflow_completion: Dict[int, float]

    @property
    def objective(self) -> float:
        return self.solution.objective

    @property
    def lower_bound(self) -> float:
        """LP optimum / (1 + eps) — eps = 1, so half the LP optimum (Lemma 7 analogue)."""
        return self.solution.objective / (1.0 + self.grid.epsilon)

    def flow_order(self) -> List[FlowId]:
        return sorted(
            self.fractions.keys(),
            key=lambda fid: (
                self.coflow_completion[fid[0]],
                self.flow_completion[fid],
                fid,
            ),
        )


class PacketGivenPathsLP:
    """Interval-indexed LP lower bound for packets on fixed paths."""

    def __init__(
        self,
        instance: CoflowInstance,
        network: Network,
        epsilon: float = 1.0,
    ) -> None:
        _check_packet_instance(instance, network)
        self.instance = instance
        self.network = network
        self.grid = IntervalGrid(epsilon=epsilon, horizon=_horizon(instance))
        self._layout = None

    # ------------------------------------------------------------------ build
    def _earliest_arrivals(self) -> np.ndarray:
        """Per-flow dilation bound: release + path length (hops)."""
        return np.asarray(
            [
                flow.release_time + len(flow.path) - 1
                for _i, _j, flow in self.instance.iter_flows()
            ],
            dtype=float,
        )

    def _edge_users(self) -> Dict[Edge, List[int]]:
        """Edges in first-seen order → flow positions whose path crosses them.

        A packet whose (non-simple) path traverses an edge twice is listed
        once — matching the scalar dict semantics, where repeated terms for
        the same variable key overwrite rather than sum.
        """
        edge_users: Dict[Edge, List[int]] = {}
        for pos, (_i, _j, flow) in enumerate(self.instance.iter_flows()):
            for e in dict.fromkeys(path_edges(flow.path)):
                edge_users.setdefault(e, []).append(pos)
        return edge_users

    def build(self) -> LinearProgram:
        """Assemble the LP through the bulk (vectorized) pipeline."""
        instance, grid = self.instance, self.grid
        L = grid.num_intervals
        lp = LinearProgram(name="packet-given-paths")
        layout = add_completion_variables_bulk(lp, instance, grid)
        self._layout = layout
        F = layout.num_flows
        rights = grid.boundaries[1:]  # tau_{ell+1} for ell = 0..L-1
        earliest = self._earliest_arrivals()
        flow_ids = np.arange(F, dtype=np.int64)
        ell_ids = np.arange(L, dtype=np.int64)

        if F:
            # ---- arrive / completion / coflow-last: the shared families.
            add_core_families_bulk(lp, instance, layout)
            # ---- dilation: x[f, ell] == 0 where the interval closes before
            # the packet can possibly arrive (release + path length).
            blocked = rights[None, :] < earliest[:, None] - 1e-9  # (F, L)
            counts = blocked.sum(axis=1)  # prefix property: rights ascending
            total = int(counts.sum())
            if total:
                cols = np.repeat(layout.xc_base, counts) + stacked_aranges(counts)
                lp.add_constraints_coo(
                    rows=np.arange(total, dtype=np.int64),
                    cols=cols,
                    vals=np.ones(total),
                    senses="==",
                    rhs=np.zeros(total),
                )
            # ---- lbc: c[f] >= earliest arrival.
            lp.add_constraints_coo(
                rows=flow_ids,
                cols=layout.c_cols,
                vals=np.ones(F),
                senses=">=",
                rhs=earliest,
            )

        # ---- congestion (28): for each shared edge and interval ell, the
        # packets arrived by tau_{ell+1} each crossed the edge once, so their
        # count is at most tau_{ell+1}.  Entry pattern per edge is the
        # triangular (ell, t <= ell) prefix, built once and reused.
        tri_offsets = stacked_aranges(ell_ids + 1)  # [0, 0,1, 0,1,2, ...]
        tri_rows = np.repeat(ell_ids, ell_ids + 1)
        K = tri_offsets.shape[0]
        rows_parts: List[np.ndarray] = []
        cols_parts: List[np.ndarray] = []
        rhs_parts: List[np.ndarray] = []
        row_offset = 0
        for _e, users in self._edge_users().items():
            bases = layout.xc_base[np.asarray(users, dtype=np.int64)]
            cols_parts.append((bases[:, None] + tri_offsets[None, :]).ravel())
            rows_parts.append(
                np.broadcast_to(row_offset + tri_rows, (bases.shape[0], K)).ravel()
            )
            rhs_parts.append(rights[:L])
            row_offset += L
        if rhs_parts:
            rows = np.concatenate(rows_parts)
            lp.add_constraints_coo(
                rows=rows,
                cols=np.concatenate(cols_parts),
                vals=np.ones(rows.shape[0]),
                senses="<=",
                rhs=np.concatenate(rhs_parts),
            )
        return lp

    def build_scalar(self) -> LinearProgram:
        """Assemble the same LP through the legacy scalar API (reference)."""
        instance, grid = self.instance, self.grid
        L = grid.num_intervals
        lp = LinearProgram(name="packet-given-paths")
        add_completion_variables_scalar(lp, instance, grid)
        flows = list(instance.iter_flows())
        earliest = self._earliest_arrivals()

        for i, j, _flow in flows:
            lp.add_constraint(
                {("x", i, j, ell): 1.0 for ell in range(L)}, "==", 1.0,
                name=f"arrive[{i},{j}]",
            )
        for i, j, _flow in flows:
            lp.add_constraint(
                {
                    **{("x", i, j, ell): grid.left(ell) for ell in range(L)},
                    ("c", i, j): -1.0,
                },
                "<=",
                0.0,
                name=f"completion[{i},{j}]",
            )
        for i, j, _flow in flows:
            lp.add_constraint(
                {("c", i, j): 1.0, ("C", i): -1.0}, "<=", 0.0,
                name=f"coflow-last[{i},{j}]",
            )
        # A packet cannot arrive in an interval that closes before its
        # earliest feasible arrival (release + path length).
        for pos, (i, j, _flow) in enumerate(flows):
            for ell in range(L):
                if grid.right(ell) < earliest[pos] - 1e-9:
                    lp.add_constraint(
                        {("x", i, j, ell): 1.0}, "==", 0.0,
                        name=f"dilation[{i},{j},{ell}]",
                    )
        # The completion proxy can also never undercut the earliest arrival.
        for pos, (i, j, _flow) in enumerate(flows):
            lp.add_constraint(
                {("c", i, j): 1.0}, ">=", float(earliest[pos]), name=f"lbc[{i},{j}]"
            )

        # Congestion validity (constraint (28) of the paper).
        for e, users in self._edge_users().items():
            for ell in range(L):
                lp.add_constraint(
                    {
                        ("x", *flows[pos][:2], t): 1.0
                        for pos in users
                        for t in range(ell + 1)
                    },
                    "<=",
                    grid.right(ell),
                    name=f"congestion[{e},{ell}]",
                )
        return lp

    def relax(self) -> PacketGivenPathsRelaxation:
        lp = self.build()
        solution = solve(lp)
        fractions, flow_completion, coflow_completion = extract_completion(
            solution, self._layout
        )
        return PacketGivenPathsRelaxation(
            instance=self.instance,
            network=self.network,
            grid=self.grid,
            solution=solution,
            fractions=fractions,
            flow_completion=flow_completion,
            coflow_completion=coflow_completion,
        )


@dataclass
class PacketGivenPathsResult:
    """Output of the fixed-path packet coflow scheduler."""

    relaxation: PacketGivenPathsRelaxation
    schedule: PacketSchedule
    congestion: int
    dilation: int

    @property
    def objective(self) -> float:
        return self.schedule.weighted_completion_time(self.relaxation.instance)

    @property
    def lower_bound(self) -> float:
        return self.relaxation.lower_bound

    @property
    def approximation_ratio(self) -> float:
        lb = self.lower_bound
        return self.objective / lb if lb > 0 else 1.0


class PacketGivenPathsScheduler:
    """LP-ordered list scheduling for packet coflows on fixed paths."""

    def __init__(
        self, instance: CoflowInstance, network: Network, epsilon: float = 1.0
    ) -> None:
        _check_packet_instance(instance, network)
        self.instance = instance
        self.network = network
        self._lp = PacketGivenPathsLP(instance, network, epsilon=epsilon)

    def relax(self) -> PacketGivenPathsRelaxation:
        return self._lp.relax()

    def schedule(
        self, relaxation: Optional[PacketGivenPathsRelaxation] = None
    ) -> PacketGivenPathsResult:
        """Solve the LP and list-schedule packets by LP completion order."""
        relaxation = relaxation or self.relax()
        order = relaxation.flow_order()
        priority = {fid: float(rank) for rank, fid in enumerate(order)}
        paths = {
            (i, j): flow.path for i, j, flow in self.instance.iter_flows()
        }
        schedule = list_schedule_packets(self.instance, paths, priority=priority)
        schedule.validate(self.instance, self.network)
        return PacketGivenPathsResult(
            relaxation=relaxation,
            schedule=schedule,
            congestion=congestion(paths),
            dilation=dilation(paths),
        )
