"""Unified entry point for packet-based coflow scheduling (Section 3).

:func:`schedule_packet_coflows` dispatches between the two variants:

* every packet carries a fixed path → the job-shop algorithm of Section 3.1
  (:class:`repro.packet.given_paths.PacketGivenPathsScheduler`);
* otherwise → the time-expanded-LP algorithm of Section 3.2
  (:class:`repro.packet.routing.PacketRoutingScheduler`).

Both return a validated :class:`~repro.core.schedule.PacketSchedule` along
with the LP lower bound, so callers can report measured approximation ratios
(the Table-1 benchmark does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.flows import CoflowInstance
from ..core.network import Network
from ..core.schedule import PacketSchedule
from .given_paths import PacketGivenPathsResult, PacketGivenPathsScheduler
from .routing import PacketRoutingResult, PacketRoutingScheduler

__all__ = ["PacketSchedulingOutcome", "schedule_packet_coflows"]


@dataclass
class PacketSchedulingOutcome:
    """Common view over the two packet algorithms' results."""

    schedule: PacketSchedule
    objective: float
    lower_bound: float
    variant: str
    detail: Union[PacketGivenPathsResult, PacketRoutingResult]

    @property
    def approximation_ratio(self) -> float:
        return self.objective / self.lower_bound if self.lower_bound > 0 else 1.0


def schedule_packet_coflows(
    instance: CoflowInstance,
    network: Network,
    seed: Optional[int] = 0,
    horizon: Optional[int] = None,
) -> PacketSchedulingOutcome:
    """Schedule packet coflows, choosing the algorithm by whether paths are given."""
    if instance.all_paths_given:
        result = PacketGivenPathsScheduler(instance, network).schedule()
        return PacketSchedulingOutcome(
            schedule=result.schedule,
            objective=result.objective,
            lower_bound=result.lower_bound,
            variant="given-paths",
            detail=result,
        )
    result = PacketRoutingScheduler(
        instance, network, horizon=horizon, seed=seed
    ).schedule()
    return PacketSchedulingOutcome(
        schedule=result.schedule,
        objective=result.objective,
        lower_bound=result.lower_bound,
        variant="routing",
        detail=result,
    )
