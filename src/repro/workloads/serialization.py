"""JSON (de)serialization of coflow instances.

Lets benchmark workloads be saved and replayed exactly, and makes it easy to
import externally collected coflow traces (e.g. the published Facebook trace
format: per-coflow lists of source/destination/bytes) into the data model.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..core.flows import Coflow, CoflowInstance, Flow

__all__ = ["instance_to_dict", "instance_from_dict", "save_instance", "load_instance"]


def instance_to_dict(instance: CoflowInstance) -> Dict[str, Any]:
    """Convert an instance to a JSON-serializable dictionary."""
    return {
        "name": instance.name,
        "coflows": [
            {
                "name": coflow.name,
                "weight": coflow.weight,
                "flows": [
                    {
                        "source": flow.source,
                        "destination": flow.destination,
                        "size": flow.size,
                        "release_time": flow.release_time,
                        "path": list(flow.path) if flow.path is not None else None,
                    }
                    for flow in coflow.flows
                ],
            }
            for coflow in instance.coflows
        ],
    }


def instance_from_dict(data: Dict[str, Any]) -> CoflowInstance:
    """Inverse of :func:`instance_to_dict`."""
    coflows: List[Coflow] = []
    for coflow_data in data["coflows"]:
        flows = [
            Flow(
                source=f["source"],
                destination=f["destination"],
                size=float(f.get("size", 1.0)),
                release_time=float(f.get("release_time", 0.0)),
                path=tuple(f["path"]) if f.get("path") else None,
            )
            for f in coflow_data["flows"]
        ]
        coflows.append(
            Coflow(
                flows=tuple(flows),
                weight=float(coflow_data.get("weight", 1.0)),
                name=coflow_data.get("name"),
            )
        )
    return CoflowInstance(coflows=coflows, name=data.get("name"))


def save_instance(instance: CoflowInstance, path: Union[str, Path]) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: Union[str, Path]) -> CoflowInstance:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))
