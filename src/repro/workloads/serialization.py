"""JSON (de)serialization of coflow instances and workload configs.

Lets benchmark workloads be saved and replayed exactly, and makes it easy to
import externally collected coflow traces (e.g. the published Facebook trace
format: per-coflow lists of source/destination/bytes) into the data model.
Workload configs round-trip through plain dictionaries so the experiment
engine's run store can persist them (and key cached results on them).
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from pathlib import Path
from typing import Any, Dict, List, Union

from ..core.flows import Coflow, CoflowInstance, Flow
from .generator import WorkloadConfig

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "config_to_dict",
    "config_from_dict",
]


def instance_to_dict(instance: CoflowInstance) -> Dict[str, Any]:
    """Convert an instance to a JSON-serializable dictionary."""
    return {
        "name": instance.name,
        "coflows": [
            {
                "name": coflow.name,
                "weight": coflow.weight,
                "flows": [
                    {
                        "source": flow.source,
                        "destination": flow.destination,
                        "size": flow.size,
                        "release_time": flow.release_time,
                        "path": list(flow.path) if flow.path is not None else None,
                    }
                    for flow in coflow.flows
                ],
            }
            for coflow in instance.coflows
        ],
    }


def instance_from_dict(data: Dict[str, Any]) -> CoflowInstance:
    """Inverse of :func:`instance_to_dict`."""
    coflows: List[Coflow] = []
    for coflow_data in data["coflows"]:
        flows = [
            Flow(
                source=f["source"],
                destination=f["destination"],
                size=float(f.get("size", 1.0)),
                release_time=float(f.get("release_time", 0.0)),
                path=tuple(f["path"]) if f.get("path") else None,
            )
            for f in coflow_data["flows"]
        ]
        coflows.append(
            Coflow(
                flows=tuple(flows),
                weight=float(coflow_data.get("weight", 1.0)),
                name=coflow_data.get("name"),
            )
        )
    return CoflowInstance(coflows=coflows, name=data.get("name"))


def config_to_dict(config: WorkloadConfig) -> Dict[str, Any]:
    """Convert a workload config to a JSON-serializable dictionary."""
    return asdict(config)


def config_from_dict(data: Dict[str, Any]) -> WorkloadConfig:
    """Inverse of :func:`config_to_dict`.

    Unknown keys are ignored so run stores written by newer versions (with
    extra config fields) still load.
    """
    known = {f.name for f in fields(WorkloadConfig)}
    return WorkloadConfig(**{k: v for k, v in data.items() if k in known})


def save_instance(instance: CoflowInstance, path: Union[str, Path]) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: Union[str, Path]) -> CoflowInstance:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))
