"""Random coflow workload generation (Section 4.1) and scenario families.

The paper generates each coflow instance randomly "with flow release times,
flow sizes, and coflow weights based on Poisson distributions" on a
128-server fat-tree, and varies two parameters: the *coflow width* (flows per
coflow, Figure 3) and the *number of coflows* (Figure 4), averaging 10 random
tries per point.  The exact distribution parameters are not reported; this
module exposes them as an explicit :class:`WorkloadConfig` with defaults
chosen so that the default fat-tree is moderately loaded (the qualitative
regime of the figures).

Beyond the paper's single Poisson-on-fat-tree workload, the config opens the
scenario space along three axes:

* **flow sizes** (:attr:`WorkloadConfig.flow_size_distribution`) —
  ``"poisson"`` (the paper), ``"pareto"`` (heavy-tailed with tail index
  :attr:`WorkloadConfig.pareto_shape`), and ``"facebook"`` (a trace-style
  mice/elephants mixture echoing the published Facebook coflow benchmark,
  where most flows are small and a few elephants carry most bytes);
* **endpoints** (:attr:`WorkloadConfig.endpoint_distribution`) —
  ``"uniform"`` over distinct host pairs (the paper's implicit traffic
  matrix), ``"skewed"`` (Zipf-popular hosts, modelling hot storage or
  service nodes), and ``"incast"`` (every flow of a coflow targets one
  destination, the classic partition-aggregate pattern);
* **topology** (:attr:`WorkloadConfig.topology`) — an optional declarative
  spec string resolved by :func:`repro.core.topologies.from_spec`, so a
  config alone fully describes a reproducible scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.flows import Coflow, CoflowInstance, Flow
from ..core.network import Network
from ..core.topologies import from_spec, host_nodes

__all__ = [
    "WorkloadConfig",
    "CoflowGenerator",
    "generate_instance",
    "FLOW_SIZE_DISTRIBUTIONS",
    "ENDPOINT_DISTRIBUTIONS",
]

#: Supported flow-size families.
FLOW_SIZE_DISTRIBUTIONS = ("poisson", "pareto", "facebook")
#: Supported endpoint families.
ENDPOINT_DISTRIBUTIONS = ("uniform", "skewed", "incast")


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a random coflow workload.

    The defaults reproduce Section 4.1's Poisson workload; the distribution
    fields open the heavy-tailed / skewed / incast scenario families.

    Attributes
    ----------
    num_coflows:
        Number of coflows in the instance (Figure 4 sweeps this).
    coflow_width:
        Number of flows per coflow (Figure 3 sweeps this).
    mean_flow_size:
        Mean flow size (in capacity x time units; with 1 Gb/s links a size
        of 1 takes one time unit on an idle path).  All size families are
        parameterised to hit (approximately) this mean so sweeps stay
        comparable across families.
    release_rate:
        Rate of the Poisson process generating flow release times; release
        times are cumulative exponential gaps with this rate per coflow, so a
        larger rate packs flows closer together.  ``None`` releases every flow
        at time zero.
    coflow_arrival_rate:
        Rate of the Poisson arrival process *between coflows*: each coflow's
        releases are offset by a cumulative exponential gap with this rate,
        so coflows arrive over time instead of all being present up front —
        the operating regime of the online (re-planning) schemes.  ``None``
        (default, the paper's setting) applies no offset.
    mean_weight:
        Mean of the Poisson distribution of coflow weights
        (weights are ``1 + Poisson(mean - 1)``).
    unit_sizes:
        Force every flow size to 1 (packet-based workloads).
    seed:
        Base RNG seed; :class:`CoflowGenerator` advances it per instance.
    flow_size_distribution:
        ``"poisson"`` — sizes are ``1 + Poisson(mean - 1)`` (the paper);
        ``"pareto"`` — Pareto(:attr:`pareto_shape`) scaled to the configured
        mean, a heavy-tailed family whose largest flow dominates;
        ``"facebook"`` — a mice/elephants mixture (70% short exponential
        flows, 30% Pareto elephants) qualitatively matching the published
        Facebook coflow trace's size CDF.
    pareto_shape:
        Tail index of the Pareto families (must exceed 1 so the mean exists;
        smaller = heavier tail).
    endpoint_distribution:
        ``"uniform"`` — endpoints uniform over distinct host pairs;
        ``"skewed"`` — hosts weighted by a Zipf law with exponent
        :attr:`zipf_exponent` (a per-instance random permutation decides
        which hosts are hot); ``"incast"`` — each coflow draws one
        destination and all its flows converge on it from distinct-ish
        sources (fan-in = coflow width).
    zipf_exponent:
        Skew strength of the ``"skewed"`` endpoint family (0 = uniform).
    topology:
        Optional topology spec string (see
        :func:`repro.core.topologies.from_spec`), e.g. ``"fat_tree(k=4)"``.
        When set, :meth:`build_network` constructs the network so the config
        alone describes a full scenario; :class:`CoflowGenerator` still
        accepts an explicit network, which takes precedence.
    """

    num_coflows: int = 10
    coflow_width: int = 16
    mean_flow_size: float = 4.0
    release_rate: Optional[float] = 1.0
    coflow_arrival_rate: Optional[float] = None
    mean_weight: float = 2.0
    unit_sizes: bool = False
    seed: int = 0
    flow_size_distribution: str = "poisson"
    pareto_shape: float = 1.5
    endpoint_distribution: str = "uniform"
    zipf_exponent: float = 1.2
    topology: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_coflows < 1:
            raise ValueError("need at least one coflow")
        if self.coflow_width < 1:
            raise ValueError("coflow width must be at least one")
        if self.mean_flow_size < 1:
            raise ValueError("mean flow size must be at least 1")
        if self.mean_weight < 1:
            raise ValueError("mean weight must be at least 1")
        if self.release_rate is not None and self.release_rate <= 0:
            raise ValueError("release rate must be positive")
        if self.coflow_arrival_rate is not None and self.coflow_arrival_rate <= 0:
            raise ValueError("coflow arrival rate must be positive")
        if self.flow_size_distribution not in FLOW_SIZE_DISTRIBUTIONS:
            raise ValueError(
                f"unknown flow size distribution {self.flow_size_distribution!r} "
                f"(known: {', '.join(FLOW_SIZE_DISTRIBUTIONS)})"
            )
        if self.endpoint_distribution not in ENDPOINT_DISTRIBUTIONS:
            raise ValueError(
                f"unknown endpoint distribution {self.endpoint_distribution!r} "
                f"(known: {', '.join(ENDPOINT_DISTRIBUTIONS)})"
            )
        if self.pareto_shape <= 1.0:
            raise ValueError("pareto shape must exceed 1 (finite mean)")
        if self.zipf_exponent < 0.0:
            raise ValueError("zipf exponent must be non-negative")

    def with_width(self, coflow_width: int) -> "WorkloadConfig":
        """Copy with a different coflow width (Figure 3 sweep)."""
        return replace(self, coflow_width=coflow_width)

    def with_num_coflows(self, num_coflows: int) -> "WorkloadConfig":
        """Copy with a different number of coflows (Figure 4 sweep)."""
        return replace(self, num_coflows=num_coflows)

    def with_seed(self, seed: int) -> "WorkloadConfig":
        """Copy with a different RNG seed (one copy per random try)."""
        return replace(self, seed=seed)

    def build_network(self) -> Network:
        """Build the network named by :attr:`topology`.

        Raises ``ValueError`` when the config carries no topology spec.
        """
        if self.topology is None:
            raise ValueError(
                "config has no topology spec; pass a Network explicitly or "
                "set WorkloadConfig.topology"
            )
        return from_spec(self.topology)


class CoflowGenerator:
    """Draws random :class:`CoflowInstance` objects on a given topology."""

    def __init__(
        self, network: Optional[Network] = None, config: Optional[WorkloadConfig] = None
    ) -> None:
        config = config or WorkloadConfig()
        if network is None:
            network = config.build_network()
        hosts = host_nodes(network)
        if len(hosts) < 2:
            raise ValueError(
                "workload generation needs a topology with at least two hosts "
                "(nodes named 'host_*')"
            )
        self.network = network
        self.config = config
        self.hosts = hosts

    # ------------------------------------------------------------------ draws
    def _poisson_at_least_one(self, rng: np.random.Generator, mean: float) -> float:
        return float(1 + rng.poisson(max(mean - 1.0, 0.0)))

    def _flow_size(self, rng: np.random.Generator) -> float:
        cfg = self.config
        if cfg.unit_sizes:
            return 1.0
        if cfg.flow_size_distribution == "poisson":
            return self._poisson_at_least_one(rng, cfg.mean_flow_size)
        if cfg.flow_size_distribution == "pareto":
            # 1 + pareto(a) is Pareto with minimum 1 and mean a/(a-1); scale
            # so the family mean matches mean_flow_size.
            alpha = cfg.pareto_shape
            scale = cfg.mean_flow_size * (alpha - 1.0) / alpha
            return float(scale * (1.0 + rng.pareto(alpha)))
        # "facebook": mice/elephants mixture.  70% of flows are short
        # (exponential around a fraction of the mean), 30% are heavy-tailed
        # elephants; the weights keep the overall mean at mean_flow_size.
        mice_mean = 0.3 * cfg.mean_flow_size
        elephant_mean = (cfg.mean_flow_size - 0.7 * mice_mean) / 0.3
        if rng.random() < 0.7:
            return float(max(1.0, rng.exponential(mice_mean)))
        alpha = cfg.pareto_shape
        scale = elephant_mean * (alpha - 1.0) / alpha
        return float(scale * (1.0 + rng.pareto(alpha)))

    def _host_probabilities(self, rng: np.random.Generator) -> Optional[np.ndarray]:
        """Zipf popularity over a per-instance random permutation of hosts."""
        if self.config.endpoint_distribution != "skewed":
            return None
        ranks = rng.permutation(len(self.hosts))
        weights = 1.0 / np.power(1.0 + ranks, self.config.zipf_exponent)
        return weights / weights.sum()

    def _endpoints(
        self,
        rng: np.random.Generator,
        probabilities: Optional[np.ndarray],
        destination: Optional[str],
    ) -> Tuple[str, str]:
        if destination is not None:
            # incast: fixed per-coflow destination, any other host as source.
            while True:
                src = self.hosts[int(rng.integers(len(self.hosts)))]
                if src != destination:
                    return src, destination
        if probabilities is None:
            src, dst = rng.choice(len(self.hosts), size=2, replace=False)
            return self.hosts[int(src)], self.hosts[int(dst)]
        while True:
            src, dst = rng.choice(len(self.hosts), size=2, p=probabilities)
            if src != dst:
                return self.hosts[int(src)], self.hosts[int(dst)]

    def instance(self, seed_offset: int = 0, name: Optional[str] = None) -> CoflowInstance:
        """Generate one random instance (deterministic given config + offset)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + seed_offset)
        probabilities = self._host_probabilities(rng)
        coflows: List[Coflow] = []
        arrival = 0.0
        for c in range(cfg.num_coflows):
            weight = self._poisson_at_least_one(rng, cfg.mean_weight)
            destination: Optional[str] = None
            if cfg.endpoint_distribution == "incast":
                destination = self.hosts[int(rng.integers(len(self.hosts)))]
            if cfg.coflow_arrival_rate is not None:
                arrival += float(rng.exponential(1.0 / cfg.coflow_arrival_rate))
            release = arrival
            flows: List[Flow] = []
            for _ in range(cfg.coflow_width):
                src, dst = self._endpoints(rng, probabilities, destination)
                size = self._flow_size(rng)
                if cfg.release_rate is not None:
                    release += float(rng.exponential(1.0 / cfg.release_rate))
                flows.append(
                    Flow(source=src, destination=dst, size=size, release_time=release)
                )
            coflows.append(Coflow(flows=tuple(flows), weight=weight, name=f"coflow_{c}"))
        label = (
            f"{cfg.flow_size_distribution}/{cfg.endpoint_distribution}"
            f"[{cfg.num_coflows}x{cfg.coflow_width}]#{seed_offset}"
        )
        return CoflowInstance(coflows=coflows, name=name or label)

    def instances(self, count: int) -> List[CoflowInstance]:
        """Generate ``count`` independent instances (the paper averages 10)."""
        return [self.instance(seed_offset=k) for k in range(count)]


def generate_instance(
    network: Optional[Network] = None,
    config: Optional[WorkloadConfig] = None,
    seed_offset: int = 0,
) -> CoflowInstance:
    """Convenience wrapper: one random instance with the given config."""
    return CoflowGenerator(network, config or WorkloadConfig()).instance(seed_offset)
