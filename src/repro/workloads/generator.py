"""Random coflow workload generation (Section 4.1).

The paper generates each coflow instance randomly "with flow release times,
flow sizes, and coflow weights based on Poisson distributions" on a
128-server fat-tree, and varies two parameters: the *coflow width* (flows per
coflow, Figure 3) and the *number of coflows* (Figure 4), averaging 10 random
tries per point.  The exact distribution parameters are not reported; this
module exposes them as an explicit :class:`WorkloadConfig` with defaults
chosen so that the default fat-tree is moderately loaded (the qualitative
regime of the figures).

Endpoints are drawn uniformly over distinct host pairs, which matches the
uniform traffic matrix implicit in the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.flows import Coflow, CoflowInstance, Flow
from ..core.network import Network
from ..core.topologies import host_nodes

__all__ = ["WorkloadConfig", "CoflowGenerator", "generate_instance"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the random workload of Section 4.1.

    Attributes
    ----------
    num_coflows:
        Number of coflows in the instance (Figure 4 sweeps this).
    coflow_width:
        Number of flows per coflow (Figure 3 sweeps this).
    mean_flow_size:
        Mean of the Poisson distribution of flow sizes (in capacity x time
        units; with 1 Gb/s links a size of 1 takes one time unit on an idle
        path).  Sizes are ``1 + Poisson(mean - 1)`` so they are never zero.
    release_rate:
        Rate of the Poisson process generating flow release times; release
        times are cumulative exponential gaps with this rate per coflow, so a
        larger rate packs flows closer together.  ``None`` releases every flow
        at time zero.
    mean_weight:
        Mean of the Poisson distribution of coflow weights
        (weights are ``1 + Poisson(mean - 1)``).
    unit_sizes:
        Force every flow size to 1 (packet-based workloads).
    seed:
        Base RNG seed; :class:`CoflowGenerator` advances it per instance.
    """

    num_coflows: int = 10
    coflow_width: int = 16
    mean_flow_size: float = 4.0
    release_rate: Optional[float] = 1.0
    mean_weight: float = 2.0
    unit_sizes: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_coflows < 1:
            raise ValueError("need at least one coflow")
        if self.coflow_width < 1:
            raise ValueError("coflow width must be at least one")
        if self.mean_flow_size < 1:
            raise ValueError("mean flow size must be at least 1")
        if self.mean_weight < 1:
            raise ValueError("mean weight must be at least 1")
        if self.release_rate is not None and self.release_rate <= 0:
            raise ValueError("release rate must be positive")

    def with_width(self, coflow_width: int) -> "WorkloadConfig":
        """Copy with a different coflow width (Figure 3 sweep)."""
        return replace(self, coflow_width=coflow_width)

    def with_num_coflows(self, num_coflows: int) -> "WorkloadConfig":
        """Copy with a different number of coflows (Figure 4 sweep)."""
        return replace(self, num_coflows=num_coflows)

    def with_seed(self, seed: int) -> "WorkloadConfig":
        return replace(self, seed=seed)


class CoflowGenerator:
    """Draws random :class:`CoflowInstance` objects on a given topology."""

    def __init__(self, network: Network, config: WorkloadConfig) -> None:
        hosts = host_nodes(network)
        if len(hosts) < 2:
            raise ValueError(
                "workload generation needs a topology with at least two hosts "
                "(nodes named 'host_*')"
            )
        self.network = network
        self.config = config
        self.hosts = hosts

    # ------------------------------------------------------------------ draws
    def _poisson_at_least_one(self, rng: np.random.Generator, mean: float) -> float:
        return float(1 + rng.poisson(max(mean - 1.0, 0.0)))

    def _endpoints(self, rng: np.random.Generator) -> Tuple[str, str]:
        src, dst = rng.choice(len(self.hosts), size=2, replace=False)
        return self.hosts[int(src)], self.hosts[int(dst)]

    def instance(self, seed_offset: int = 0, name: Optional[str] = None) -> CoflowInstance:
        """Generate one random instance (deterministic given config + offset)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + seed_offset)
        coflows: List[Coflow] = []
        for c in range(cfg.num_coflows):
            weight = self._poisson_at_least_one(rng, cfg.mean_weight)
            release = 0.0
            flows: List[Flow] = []
            for _ in range(cfg.coflow_width):
                src, dst = self._endpoints(rng)
                if cfg.unit_sizes:
                    size = 1.0
                else:
                    size = self._poisson_at_least_one(rng, cfg.mean_flow_size)
                if cfg.release_rate is not None:
                    release += float(rng.exponential(1.0 / cfg.release_rate))
                flows.append(
                    Flow(source=src, destination=dst, size=size, release_time=release)
                )
            coflows.append(Coflow(flows=tuple(flows), weight=weight, name=f"coflow_{c}"))
        return CoflowInstance(
            coflows=coflows,
            name=name or f"poisson[{cfg.num_coflows}x{cfg.coflow_width}]#{seed_offset}",
        )

    def instances(self, count: int) -> List[CoflowInstance]:
        """Generate ``count`` independent instances (the paper averages 10)."""
        return [self.instance(seed_offset=k) for k in range(count)]


def generate_instance(
    network: Network, config: Optional[WorkloadConfig] = None, seed_offset: int = 0
) -> CoflowInstance:
    """Convenience wrapper: one random instance with the given config."""
    return CoflowGenerator(network, config or WorkloadConfig()).instance(seed_offset)
