"""Workload generation: Poisson instances (Section 4.1) and synthetic traces."""

from .generator import (
    ENDPOINT_DISTRIBUTIONS,
    FLOW_SIZE_DISTRIBUTIONS,
    CoflowGenerator,
    WorkloadConfig,
    generate_instance,
)
from .serialization import (
    config_from_dict,
    config_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from .traces import broadcast, heavy_tailed_instance, mapreduce_shuffle

__all__ = [
    "WorkloadConfig",
    "CoflowGenerator",
    "generate_instance",
    "FLOW_SIZE_DISTRIBUTIONS",
    "ENDPOINT_DISTRIBUTIONS",
    "mapreduce_shuffle",
    "broadcast",
    "heavy_tailed_instance",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "config_to_dict",
    "config_from_dict",
]
