"""Workload generation: Poisson instances (Section 4.1) and synthetic traces."""

from .generator import CoflowGenerator, WorkloadConfig, generate_instance
from .serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from .traces import broadcast, heavy_tailed_instance, mapreduce_shuffle

__all__ = [
    "WorkloadConfig",
    "CoflowGenerator",
    "generate_instance",
    "mapreduce_shuffle",
    "broadcast",
    "heavy_tailed_instance",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
]
