"""Synthetic application traces.

The paper motivates coflows with the shuffle stage of data-parallel frameworks
(MapReduce, Dryad, Spark): a reducer can only start once *all* map outputs
destined to it have arrived.  These builders produce such structured
workloads, which the examples and the extension benchmarks use alongside the
Poisson instances of :mod:`repro.workloads.generator`:

* :func:`mapreduce_shuffle` — an all-to-all shuffle: every mapper host sends
  one flow to every reducer host, one coflow per job;
* :func:`broadcast` — one sender distributing the same volume to many
  receivers (Spark broadcast variables / Orchestra's cornet scenario);
* :func:`heavy_tailed_instance` — coflow widths and sizes drawn from a
  Pareto-like heavy-tailed distribution, mimicking the published Facebook
  trace statistics that the Varys line of work evaluates on (most coflows are
  narrow and small, a few are very wide and carry most of the bytes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.flows import Coflow, CoflowInstance, Flow
from ..core.network import Network
from ..core.topologies import host_nodes

__all__ = ["mapreduce_shuffle", "broadcast", "heavy_tailed_instance"]


def mapreduce_shuffle(
    network: Network,
    num_jobs: int = 2,
    mappers_per_job: int = 4,
    reducers_per_job: int = 4,
    bytes_per_pair: float = 1.0,
    release_gap: float = 0.0,
    weight: float = 1.0,
    seed: Optional[int] = 0,
) -> CoflowInstance:
    """All-to-all shuffle coflows: one coflow per job, a flow per (mapper, reducer).

    Mapper and reducer hosts are drawn without replacement per job; jobs are
    released ``release_gap`` apart.
    """
    if num_jobs < 1 or mappers_per_job < 1 or reducers_per_job < 1:
        raise ValueError("jobs, mappers and reducers must all be at least 1")
    hosts = host_nodes(network)
    if len(hosts) < mappers_per_job + reducers_per_job:
        raise ValueError(
            f"topology has {len(hosts)} hosts, need at least "
            f"{mappers_per_job + reducers_per_job} for disjoint mapper/reducer sets"
        )
    rng = np.random.default_rng(seed)
    coflows: List[Coflow] = []
    for job in range(num_jobs):
        chosen = rng.choice(len(hosts), size=mappers_per_job + reducers_per_job, replace=False)
        mappers = [hosts[int(i)] for i in chosen[:mappers_per_job]]
        reducers = [hosts[int(i)] for i in chosen[mappers_per_job:]]
        release = job * release_gap
        flows = [
            Flow(source=m, destination=r, size=bytes_per_pair, release_time=release)
            for m in mappers
            for r in reducers
        ]
        coflows.append(Coflow(flows=tuple(flows), weight=weight, name=f"shuffle_{job}"))
    return CoflowInstance(coflows=coflows, name=f"shuffle[{num_jobs}jobs]")


def broadcast(
    network: Network,
    num_receivers: int = 8,
    volume_per_receiver: float = 2.0,
    weight: float = 1.0,
    seed: Optional[int] = 0,
) -> CoflowInstance:
    """A single broadcast coflow: one sender, ``num_receivers`` receivers."""
    hosts = host_nodes(network)
    if len(hosts) < num_receivers + 1:
        raise ValueError("not enough hosts for the requested broadcast fan-out")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(hosts), size=num_receivers + 1, replace=False)
    sender = hosts[int(chosen[0])]
    receivers = [hosts[int(i)] for i in chosen[1:]]
    flows = [
        Flow(source=sender, destination=r, size=volume_per_receiver) for r in receivers
    ]
    return CoflowInstance(
        coflows=[Coflow(flows=tuple(flows), weight=weight, name="broadcast")],
        name="broadcast",
    )


def heavy_tailed_instance(
    network: Network,
    num_coflows: int = 10,
    width_tail_exponent: float = 1.5,
    max_width: int = 32,
    size_tail_exponent: float = 1.2,
    max_size: float = 64.0,
    seed: Optional[int] = 0,
) -> CoflowInstance:
    """Heavy-tailed coflow widths and flow sizes (Facebook-trace-like shape).

    Widths and sizes are drawn from truncated Pareto distributions: most
    coflows are narrow with small flows, a few are wide and large — the regime
    where coflow-aware scheduling matters most.
    """
    if num_coflows < 1:
        raise ValueError("need at least one coflow")
    hosts = host_nodes(network)
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    rng = np.random.default_rng(seed)
    coflows: List[Coflow] = []
    for c in range(num_coflows):
        width = int(min(max_width, max(1, round(rng.pareto(width_tail_exponent) + 1))))
        weight = float(1 + rng.poisson(1.0))
        flows: List[Flow] = []
        for _ in range(width):
            src, dst = rng.choice(len(hosts), size=2, replace=False)
            size = float(min(max_size, 1.0 + rng.pareto(size_tail_exponent)))
            flows.append(
                Flow(source=hosts[int(src)], destination=hosts[int(dst)], size=size)
            )
        coflows.append(Coflow(flows=tuple(flows), weight=weight, name=f"ht_{c}"))
    return CoflowInstance(coflows=coflows, name="heavy-tailed")
