"""The ``repro`` command-line interface.

One operator-facing entry point for the whole reproduction (installed as the
``repro`` console script; also reachable as ``python -m repro``):

* ``repro run``    — one instance x scheme, JSON result on stdout;
* ``repro sweep``  — a declarative YAML/JSON sweep spec through the
  experiment engine (parallel workers, resume-by-default run store,
  artifact export);
* ``repro report`` — re-render an existing run store into the paper's
  tables (text/Markdown/CSV) without running anything;
* ``repro bench``  — the paper-figure suites (fig3, fig4, table1, headline,
  scenario-matrix);
* ``repro --version`` — package version plus the provenance/deviation
  summary of DESIGN.md §8.

The CLI is a thin shell: all logic lives in
:mod:`repro.analysis.artifacts` (specs, scheme registry, artifact export)
and :mod:`repro.analysis.report` (renderers), so everything the CLI does is
equally reachable from Python.
"""

from .main import build_parser, main

__all__ = ["main", "build_parser"]
