"""``repro run`` — one workload instance x one scheme, JSON result.

Generates a random coflow instance from a workload config (built from flags
or loaded from a YAML/JSON file), plans it with one scheme — a registry
name like ``LP-Based`` or a composed ``pipeline(router=..., order=...)``
spec — runs the flow-level simulator, and prints a self-describing JSON
document:
provenance, topology fingerprint, the exact config (seed included), the
scheme signature, and every scalar metric.  The document carries everything
the experiment engine would persist for the same task, so a ``repro run``
is one reproducible cell of a sweep.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Any, Dict

from ..analysis.artifacts import (
    build_schemes,
    known_scheme_names,
    load_document,
    provenance,
    strict_config_from_dict,
)
from ..lp.solver import LPInfeasibleError
from ..sim.simulator import BACKENDS, resolve_backend
from ..workloads.generator import (
    ENDPOINT_DISTRIBUTIONS,
    FLOW_SIZE_DISTRIBUTIONS,
    CoflowGenerator,
    WorkloadConfig,
)
from ..workloads.serialization import config_to_dict

#: CLI flag name (dest) -> WorkloadConfig field it overrides.
_CONFIG_FLAGS = (
    "num_coflows",
    "coflow_width",
    "mean_flow_size",
    "release_rate",
    "coflow_arrival_rate",
    "mean_weight",
    "seed",
    "flow_size_distribution",
    "pareto_shape",
    "endpoint_distribution",
    "zipf_exponent",
    "topology",
)


def configure(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``run`` subparser."""
    parser = subparsers.add_parser(
        "run",
        help="run one instance x scheme and print the JSON result",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scheme",
        default="LP-Based",
        metavar="SPEC",
        help="scheme to plan with: a registry name "
        f"({', '.join(known_scheme_names())}) or a pipeline composition "
        'such as "pipeline(router=lp, order=sebf, alloc=max-min, '
        'online=true)" (default: LP-Based)',
    )
    parser.add_argument(
        "--config",
        type=Path,
        metavar="FILE",
        help="YAML/JSON workload config mapping; explicit flags override it",
    )
    parser.add_argument(
        "--topology",
        help='topology spec string, e.g. "fat_tree(k=4)" '
        "(default: fat_tree(k=4) unless the config file sets one)",
    )
    parser.add_argument("--num-coflows", type=int, help="coflows in the instance")
    parser.add_argument("--coflow-width", type=int, help="flows per coflow")
    parser.add_argument("--mean-flow-size", type=float, help="mean flow size")
    parser.add_argument(
        "--release-rate", type=float, help="Poisson release rate (omit for default)"
    )
    parser.add_argument(
        "--coflow-arrival-rate",
        type=float,
        help="Poisson rate of coflow arrivals over time (the online regime; "
        "omit for the paper's all-at-once default)",
    )
    parser.add_argument("--mean-weight", type=float, help="mean coflow weight")
    parser.add_argument("--seed", type=int, help="instance RNG seed")
    parser.add_argument(
        "--flow-sizes",
        dest="flow_size_distribution",
        choices=FLOW_SIZE_DISTRIBUTIONS,
        help="flow-size family",
    )
    parser.add_argument(
        "--pareto-shape", type=float, help="tail index for the pareto families"
    )
    parser.add_argument(
        "--endpoints",
        dest="endpoint_distribution",
        choices=ENDPOINT_DISTRIBUTIONS,
        help="endpoint family",
    )
    parser.add_argument(
        "--zipf-exponent", type=float, help="skew strength of the skewed family"
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        help="simulation kernel tier: 'array' (Python array kernel), 'jit' "
        "(compiled tier, falls back to array when no C toolchain is "
        "available) or 'auto'; backends are bit-identical, so this only "
        "affects speed (default: the REPRO_SIM_BACKEND environment "
        "variable, then 'array')",
    )
    parser.add_argument(
        "--output", type=Path, metavar="FILE", help="write the JSON here instead of stdout"
    )
    parser.set_defaults(func=execute)


def build_config(args: argparse.Namespace) -> WorkloadConfig:
    """Resolve the workload config: file values first, flags on top."""
    data: Dict[str, Any] = {}
    if args.config is not None:
        data.update(load_document(args.config))
    for name in _CONFIG_FLAGS:
        value = getattr(args, name, None)
        if value is not None:
            data[name] = value
    data.setdefault("topology", "fat_tree(k=4)")
    try:
        return strict_config_from_dict(data, where="repro run config")
    except ValueError as error:
        raise SystemExit(f"repro run: {error}")


def execute(args: argparse.Namespace) -> int:
    """Run the instance and emit the JSON document."""
    if getattr(args, "backend", None):
        # Scheme pipelines build their own simulators (the online engine
        # constructs per-epoch kernels), so the backend choice travels as
        # the environment default every kernel constructor consults.
        os.environ["REPRO_SIM_BACKEND"] = args.backend
    config = build_config(args)
    network = config.build_network()
    try:
        scheme = build_schemes([args.scheme])[0]
    except ValueError as error:
        # Malformed/unknown scheme specs exit cleanly, naming the bad stage
        # or scheme and listing the valid choices (no traceback).
        raise SystemExit(f"repro run: {error}")
    instance = CoflowGenerator(network, config).instance()
    # Dispatch through Scheme.simulate — exactly what one engine task does —
    # so online (re-planning) schemes run their arrival loop here too.
    try:
        result = scheme.simulate(instance, network)
    except ValueError as error:
        # Plan-time contract violations (e.g. router 'given' on an
        # unrouted instance) exit cleanly instead of a traceback.
        raise SystemExit(f"repro run: scheme {args.scheme!r}: {error}")
    except LPInfeasibleError as error:
        # Solver failures exit cleanly with the enriched diagnostic (the
        # message carries solver status, HiGHS message and LP shape)
        # instead of a traceback.
        raise SystemExit(f"repro run: scheme {args.scheme!r}: {error}")
    document = {
        "provenance": provenance(),
        "topology": {"spec": config.topology, "fingerprint": network.fingerprint()},
        "config": config_to_dict(config),
        "scheme": {"name": scheme.name, "signature": scheme.signature()},
        "instance": instance.name,
        # Provenance only: backends are bit-identical, so the resolved tier
        # deliberately stays out of the scheme signature and run-store keys.
        "simulator": {"backend": resolve_backend(getattr(args, "backend", None))},
        "metrics": result.metrics(),
    }
    rendered = json.dumps(document, indent=2, sort_keys=True)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0
