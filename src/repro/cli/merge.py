"""``repro merge`` — fold shard stores into one plain run-store file.

Takes any mix of sharded store directories and JSONL store files —
complete fleets, partial fleets, a single crashed shard — and folds them
into one single-file run store that every existing consumer (``repro
report``, the bench wrappers, post-processing) reads unchanged.  Nothing
is re-simulated: the fold is pure record bookkeeping, with the fabric's
merge semantics (duplicates collapse, a success supersedes a failure for
the same key, claim markers drop, torn shard tails are skipped with a
warning instead of aborting).  See docs/fabric.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..analysis.fabric import merge_stores, write_merged


def configure(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``merge`` subparser."""
    parser = subparsers.add_parser(
        "merge",
        help="fold sharded run stores into one plain run-store file",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "stores",
        nargs="+",
        type=Path,
        metavar="STORE",
        help="sharded store directories and/or run-store JSONL files",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path("merged-runstore.jsonl"),
        metavar="FILE",
        help="merged single-file store to write "
        "(default: ./merged-runstore.jsonl)",
    )
    parser.set_defaults(func=execute)


def execute(args: argparse.Namespace) -> int:
    """Merge the stores; exit 1 when an input is missing or empty."""
    try:
        records, stats = merge_stores(args.stores)
    except FileNotFoundError as error:
        print(f"repro merge: {error}", file=sys.stderr)
        return 1
    if not records:
        print(
            "repro merge: no records found in "
            + ", ".join(str(path) for path in args.stores),
            file=sys.stderr,
        )
        return 1
    out = write_merged(records, args.output)
    print(stats.summary())
    print(f"  merged   -> {out}")
    return 0
