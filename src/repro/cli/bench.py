"""``repro bench`` — the paper-figure suites as CLI-driven sweeps.

Each suite regenerates one table or figure of the paper through the same
spec/engine/artifact pipeline as ``repro sweep``:

* ``fig3``            — coflow-width sweep (Figure 3, both panels);
* ``fig4``            — number-of-coflows sweep (Figure 4, both panels);
* ``headline``        — the Section 1.2/4.3 average-improvement summary;
* ``table1``          — measured approximation ratios vs the LP lower
  bounds for the four model variants (Table 1);
* ``scenario-matrix`` — every scheme crossed with four scenario families
  (heavy-tailed, incast, skewed hotspots) on four topologies;
* ``online``          — static vs arrival-driven re-planning schemes with
  per-coflow slowdown columns (the checked-in ``specs/online.yaml``);
* ``simulator``       — events/sec of the kernel tiers (array and jit)
  vs the reference event loop, static vs online, on a pinned leaf-spine
  instance plus a 100k-flow gate instance; appends every run to
  ``BENCH_simulator.json`` at the repo root;
* ``streaming``       — the streaming scheduler service: warm-started
  batched re-planning vs cold rebuild-per-arrival on a pinned arrival
  stream (``specs/streaming.yaml``), reporting replans/sec, arrivals per
  planning second, p99 decision latency, per-re-plan epoch-setup cost and
  online events/sec, with warm == cold exactness and the staleness-bound
  invariant asserted; plus the 100k-flow resident-session gate
  (``specs/streaming-100k.yaml``): one resident kernel session vs the
  rebuild-per-replan baseline, bit-identical results asserted and the
  online-events/sec ratio gated >= 10x at full scale; appends to
  ``BENCH_simulator.json``;
* ``pipeline-matrix`` — a router x orderer x allocator cross-product swept
  as composed ``pipeline(...)`` specs (the checked-in
  ``specs/pipeline-matrix.yaml``), one report column per composition;
* ``pipeline``        — per-stage plan-time breakdown (route vs order vs
  LP solve) of representative compositions on a pinned leaf-spine
  instance.

The suites default to a scaled-down configuration that preserves each
comparison's shape and runs in minutes; ``--paper-scale`` switches to the
paper's parameters (k=8 fat-tree, widths up to 32, slow with an
open-source solver).  The per-figure scripts under ``benchmarks/`` are
thin pytest wrappers over the functions here.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.artifacts import (
    DEFAULT_SCHEMES,
    SpecRunResult,
    SweepSpec,
    export_artifacts,
    provenance,
    run_spec,
    spec_from_dict,
    stats_summary,
)
from ..analysis.report import (
    format_csv,
    format_markdown,
    format_table,
    improvement_summary,
    render_report,
)
from ..analysis.runstore import RunStore

SUITES = (
    "fig3",
    "fig4",
    "headline",
    "table1",
    "scenario-matrix",
    "online",
    "simulator",
    "streaming",
    "pipeline-matrix",
    "pipeline",
)

#: Shared workload shape of the figure sweeps (Section 4.1's Poisson regime).
_FIGURE_BASE = {"mean_flow_size": 8.0, "release_rate": 4.0}


# ------------------------------------------------------------ spec builders

def fig3_spec(paper_scale: bool = False, tries: int = 2) -> SweepSpec:
    """Figure 3: sweep the coflow width at a fixed number of coflows."""
    return spec_from_dict(
        {
            "name": "fig3",
            "title": "Figure 3 — coflow width sweep",
            "schemes": list(DEFAULT_SCHEMES),
            "tries": tries,
            "reference": "Baseline",
            "base": {
                **_FIGURE_BASE,
                "topology": "fat_tree(k=8)" if paper_scale else "fat_tree(k=4)",
                "num_coflows": 10 if paper_scale else 6,
                "seed": 3000,
            },
            "sweep": {
                "parameter": "coflow_width",
                "values": [4, 8, 16, 32] if paper_scale else [4, 8, 16],
                "label": "{value} flows",
            },
        }
    )


def fig4_spec(paper_scale: bool = False, tries: int = 2) -> SweepSpec:
    """Figure 4: sweep the number of coflows at a fixed width."""
    return spec_from_dict(
        {
            "name": "fig4",
            "title": "Figure 4 — number-of-coflows sweep",
            "schemes": list(DEFAULT_SCHEMES),
            "tries": tries,
            "reference": "Baseline",
            "base": {
                **_FIGURE_BASE,
                "topology": "fat_tree(k=8)" if paper_scale else "fat_tree(k=4)",
                "coflow_width": 16 if paper_scale else 6,
                "seed": 4000,
            },
            "sweep": {
                "parameter": "num_coflows",
                "values": [10, 15, 20, 25, 30] if paper_scale else [4, 6, 8, 10],
                "label": "{value} coflows",
            },
        }
    )


def headline_specs(
    paper_scale: bool = False, tries: int = 2
) -> Tuple[SweepSpec, SweepSpec]:
    """The two sweeps pooled by the headline-improvement summary.

    A width sweep and a coflow-count point mixing the Figure-3 and
    Figure-4 regimes; both run against one shared store, so instances
    appearing in both pools are solved once.
    """
    topology = "fat_tree(k=8)" if paper_scale else "fat_tree(k=4)"
    num_coflows = 10 if paper_scale else 6
    width = 16 if paper_scale else 6
    common = {
        "schemes": list(DEFAULT_SCHEMES),
        "tries": tries,
        "reference": "Baseline",
    }
    width_spec = spec_from_dict(
        {
            "name": "headline-width",
            "title": "Headline pool — width regime",
            **common,
            "base": {
                **_FIGURE_BASE,
                "topology": topology,
                "num_coflows": num_coflows,
                "seed": 5000,
            },
            "sweep": {
                "parameter": "coflow_width",
                "values": [4, width],
                "label": "width {value}",
            },
        }
    )
    count_spec = spec_from_dict(
        {
            "name": "headline-count",
            "title": "Headline pool — coflow-count regime",
            **common,
            "base": {
                **_FIGURE_BASE,
                "topology": topology,
                "coflow_width": width,
                "seed": 6000,
            },
            "sweep": {
                "parameter": "num_coflows",
                "values": [num_coflows],
                "label": "{value} coflows",
            },
        }
    )
    return width_spec, count_spec


def scenario_matrix_spec(
    num_coflows: int = 4, coflow_width: int = 4, tries: int = 2
) -> SweepSpec:
    """Every scheme crossed with four qualitatively different scenarios.

    The paper evaluates one scenario — Poisson flow sizes, uniform
    endpoints, a full-bisection fat-tree.  This spec adds heavy-tailed
    elephants through an oversubscribed core, partition-aggregate incast on
    a leaf-spine fabric, and a trace-style mice/elephants mixture with
    Zipf-popular hosts on a jellyfish fabric.  Seeds are disjoint so
    scenarios never share instances.  The checked-in
    ``specs/scenario-matrix.yaml`` is pinned to this function by
    ``tests/cli/test_cli.py``.
    """
    return spec_from_dict(
        {
            "name": "scenario-matrix",
            "title": "Scenario matrix — schemes x workload families",
            "schemes": list(DEFAULT_SCHEMES),
            "tries": tries,
            "reference": "Baseline",
            "base": {
                "num_coflows": num_coflows,
                "coflow_width": coflow_width,
                "mean_flow_size": 6.0,
                "release_rate": 4.0,
            },
            "points": [
                {
                    "label": "poisson/fat-tree",
                    "config": {"seed": 7000, "topology": "fat_tree(k=4)"},
                },
                {
                    "label": "pareto/oversub-fat-tree",
                    "config": {
                        "seed": 7100,
                        "flow_size_distribution": "pareto",
                        "pareto_shape": 1.3,
                        "topology": "fat_tree(k=4, oversubscription=4.0)",
                    },
                },
                {
                    "label": "incast/leaf-spine",
                    "config": {
                        "seed": 7200,
                        "endpoint_distribution": "incast",
                        "topology": "leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=4)",
                    },
                },
                {
                    "label": "facebook-skew/jellyfish",
                    "config": {
                        "seed": 7300,
                        "flow_size_distribution": "facebook",
                        "endpoint_distribution": "skewed",
                        "zipf_exponent": 1.5,
                        "topology": "random_regular(num_switches=8, degree=3, hosts_per_switch=2, seed=1)",
                    },
                },
            ],
        }
    )


def online_spec(tries: int = 2) -> SweepSpec:
    """Static vs online re-planning schemes, with per-coflow slowdowns.

    Coflows arrive over time (``coflow_arrival_rate``), which is the regime
    the online schemes exist for: an ``Online-*`` scheme re-plans the
    unfinished volume at every arrival while its static counterpart commits
    to one clairvoyant plan.  The report carries the per-coflow slowdown
    summaries as extra metric columns.  The checked-in ``specs/online.yaml``
    is pinned to this function by ``tests/cli/test_cli.py``.
    """
    return spec_from_dict(
        {
            "name": "online",
            "title": "Online re-planning vs static plans",
            "schemes": [
                "SEBF",
                "Online-SEBF",
                "Schedule-only",
                "Online-Schedule-only",
                "Baseline",
            ],
            "tries": tries,
            "reference": "Baseline",
            "extra_metrics": ["mean_slowdown", "max_slowdown"],
            "base": {
                "topology": "leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=4)",
                "num_coflows": 6,
                "coflow_width": 4,
                "mean_flow_size": 6.0,
                "release_rate": 2.0,
                "coflow_arrival_rate": 0.25,
                "seed": 9000,
            },
            "points": [
                {"label": "staggered-arrivals", "config": {}},
                {
                    "label": "bursty-arrivals",
                    "config": {"coflow_arrival_rate": 1.0, "seed": 9100},
                },
                {
                    "label": "incast-arrivals",
                    "config": {"endpoint_distribution": "incast", "seed": 9200},
                },
            ],
        }
    )


def pipeline_matrix_spec(tries: int = 2) -> SweepSpec:
    """A router x orderer x allocator cross-product as composed specs.

    The point of the pipeline API: the grid below — three routing rules
    crossed with two orderings, plus a fair-sharing allocator variant and an
    arrival-driven online variant — is nine schemes expressed purely as
    spec strings, no Python classes.  ``Baseline`` (itself the alias of
    ``pipeline(router=random, order=random)``) anchors the ratios.  The
    checked-in ``specs/pipeline-matrix.yaml`` is pinned to this function by
    ``tests/cli/test_cli.py``.
    """
    composed = [
        f"pipeline(router={router}, order={order})"
        for router in ("random", "balanced", "lp")
        for order in ("mct", "sebf")
    ] + [
        "pipeline(router=balanced, order=sebf, alloc=max-min)",
        "pipeline(router=balanced, order=sebf, online=true)",
    ]
    return spec_from_dict(
        {
            "name": "pipeline-matrix",
            "title": "Pipeline matrix — router x orderer x allocator cross-product",
            "schemes": ["Baseline"] + composed,
            "tries": tries,
            "reference": "Baseline",
            "base": {
                "topology": "leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=4)",
                "num_coflows": 4,
                "coflow_width": 4,
                "mean_flow_size": 6.0,
                "release_rate": 2.0,
                "coflow_arrival_rate": 0.25,
                "seed": 11000,
            },
            "points": [
                {"label": "staggered/leaf-spine", "config": {}},
                {
                    "label": "incast/leaf-spine",
                    "config": {"endpoint_distribution": "incast", "seed": 11100},
                },
            ],
        }
    )


def _write_static_report(
    target: Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str,
    metadata: Dict[str, Any],
) -> None:
    """Write a non-sweep suite's artifacts: the three report formats plus a
    ``run.json`` carrying the provenance block every artifact promises
    (DESIGN.md §8)."""
    target.mkdir(parents=True, exist_ok=True)
    (target / "report.txt").write_text(format_table(headers, rows, title=title) + "\n")
    (target / "report.md").write_text(format_markdown(headers, rows, title=title) + "\n")
    (target / "report.csv").write_text(format_csv(headers, rows))
    document = {"provenance": provenance(), **metadata}
    (target / "run.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


# ------------------------------------------------------------- sweep suites

def run_sweep_suite(
    spec: SweepSpec,
    out_dir: Path,
    workers: int = 0,
    store: Optional[RunStore] = None,
) -> Tuple[SpecRunResult, Dict[str, Path]]:
    """Run one spec against its artifact-directory store and export."""
    if store is None:
        store = RunStore(Path(out_dir) / spec.name / "runstore.jsonl")
    run = run_spec(spec, store, workers=workers)
    paths = export_artifacts(
        out_dir, spec, run.result, run.stats, run.fingerprints, store,
        extras=run.extras,
    )
    return run, paths


def headline_improvements(
    width_run: SpecRunResult, count_run: SpecRunResult
) -> Dict[str, float]:
    """Average improvement of LP-Based over each heuristic, pooled across
    the two headline regimes (mean of the two sweeps' per-sweep averages)."""
    import numpy as np

    improvements = {}
    for reference in ("Baseline", "Schedule-only", "Route-only"):
        gains = [
            width_run.result.average_improvement("LP-Based", reference),
            count_run.result.average_improvement("LP-Based", reference),
        ]
        improvements[reference] = float(np.mean(gains))
    return improvements


def run_headline(
    out_dir: Path,
    workers: int = 0,
    paper_scale: bool = False,
    tries: int = 2,
    smoke: bool = False,
) -> Tuple[Dict[str, float], SpecRunResult, SpecRunResult]:
    """Run the headline pool (shared store) and export its summary table."""
    width_spec, count_spec = headline_specs(paper_scale, tries)
    if smoke:
        width_spec, count_spec = width_spec.smoke(), count_spec.smoke()
    name = "headline-smoke" if smoke else "headline"
    target = Path(out_dir) / name
    store = RunStore(target / "runstore.jsonl")
    width_run, _ = run_sweep_suite(width_spec, out_dir, workers, store=store)
    count_run, _ = run_sweep_suite(count_spec, out_dir, workers, store=store)

    improvements = headline_improvements(width_run, count_run)
    title = (
        "Headline: average improvement of LP-Based (paper: 110-126% vs "
        "Baseline, 72-96% vs Schedule-only, 22-26% vs Route-only)"
    )
    _write_static_report(
        target,
        ["reference scheme", "avg improvement of LP-Based (%)"],
        [[name_, gain] for name_, gain in improvements.items()],
        title,
        {
            "suite": name,
            "pools": [width_spec.to_dict(), count_spec.to_dict()],
            "store": str(store.path),
            "engine": {
                "total_tasks": width_run.stats.total_tasks + count_run.stats.total_tasks,
                "cached": width_run.stats.cached + count_run.stats.cached,
                "executed": width_run.stats.executed + count_run.stats.executed,
                "workers": workers or 1,
            },
        },
    )
    return improvements, width_run, count_run


# ------------------------------------------------------------ table1 suite

def circuit_given_paths_ratio() -> Tuple[float, float]:
    """Circuit model, paths given: measured ratio and the proved blow-up."""
    from ..circuit import GivenPathsScheduler
    from ..core import topologies
    from ..workloads import CoflowGenerator, WorkloadConfig

    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=4, coflow_width=4, seed=41)
    ).instance()
    routed = instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )
    result = GivenPathsScheduler(routed, network).schedule()
    return result.approximation_ratio, result.parameters.blowup_factor


def circuit_routing_ratio() -> Tuple[float, float]:
    """Circuit model, paths not given: measured ratio and Chernoff bound."""
    from ..circuit import PathsNotGivenScheduler, chernoff_congestion_bound
    from ..core import topologies
    from ..workloads import CoflowGenerator, WorkloadConfig

    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=4, coflow_width=4, seed=42)
    ).instance()
    scheduler = PathsNotGivenScheduler(instance, network, seed=0)
    plan, result = scheduler.schedule()
    ratio = result.objective / plan.lower_bound if plan.lower_bound > 0 else 1.0
    return ratio, chernoff_congestion_bound(network.num_edges)


def packet_given_paths_ratio() -> float:
    """Packet model, paths given: measured ratio vs the job-shop LP bound."""
    from ..core import topologies
    from ..packet import PacketGivenPathsScheduler
    from ..workloads import CoflowGenerator, WorkloadConfig

    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network,
        WorkloadConfig(
            num_coflows=4, coflow_width=3, unit_sizes=True, release_rate=None, seed=43
        ),
    ).instance()
    routed = instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )
    return PacketGivenPathsScheduler(routed, network).schedule().approximation_ratio


def packet_routing_ratio() -> float:
    """Packet model, paths not given: measured ratio on the time-expanded LP."""
    from ..core import topologies
    from ..packet import PacketRoutingScheduler
    from ..workloads import CoflowGenerator, WorkloadConfig

    network = topologies.ring(6)
    instance = CoflowGenerator(
        network,
        WorkloadConfig(
            num_coflows=3, coflow_width=3, unit_sizes=True, release_rate=None, seed=44
        ),
    ).instance()
    return PacketRoutingScheduler(instance, network, seed=0).schedule().approximation_ratio


def table1_ratios() -> Dict[str, Tuple[float, str]]:
    """Measured approximation ratios for the four model variants of Table 1.

    Returns ``{variant: (measured ratio, paper guarantee)}``; the measured
    ratios are small constants far below the worst-case analysis.
    """
    circuit_given, circuit_given_bound = circuit_given_paths_ratio()
    circuit_routed, congestion_bound = circuit_routing_ratio()
    return {
        "circuit / given": (circuit_given, f"O(1): {circuit_given_bound:.1f}"),
        "circuit / not given": (
            circuit_routed,
            f"O(log E / log log E): 1+delta = {congestion_bound:.1f}",
        ),
        "packet / given": (packet_given_paths_ratio(), "O(1)"),
        "packet / not given": (packet_routing_ratio(), "O(1)"),
    }


def run_table1(out_dir: Path) -> Dict[str, Tuple[float, str]]:
    """Run the Table-1 measurements and export text/Markdown/CSV renders."""
    ratios = table1_ratios()
    _write_static_report(
        Path(out_dir) / "table1",
        ["model / paths", "measured ratio vs LP bound", "paper guarantee"],
        [[model, measured, bound] for model, (measured, bound) in ratios.items()],
        "Table 1 — approximation ratios (measured against the LP lower bound)",
        {"suite": "table1"},
    )
    return ratios


# ----------------------------------------------------------- simulator suite

#: The pinned simulator benchmark instance: 8 coflows x 48 flows each on a
#: 32-host leaf-spine fabric (``--smoke`` shrinks it for CI).
_SIMULATOR_BENCH = {
    "topology": "leaf_spine(num_leaves=4, num_spines=4, hosts_per_leaf=8)",
    "num_coflows": 8,
    "coflow_width": 48,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "seed": 123,
}
_SIMULATOR_BENCH_SMOKE = {
    "topology": "leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=4)",
    "num_coflows": 2,
    "coflow_width": 8,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "seed": 123,
}

#: The compiled-tier gate instance: 100k flows (1000 coflows x 100) arriving
#: over time on a 128-host leaf-spine fabric — two orders of magnitude above
#: the classic pinned instance, the scale the jit backend exists for.  Also
#: pinned as ``specs/simulator-100k.yaml``.
_SIMULATOR_BENCH_100K = {
    "topology": "leaf_spine(num_leaves=8, num_spines=8, hosts_per_leaf=16)",
    "num_coflows": 1000,
    "coflow_width": 100,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "coflow_arrival_rate": 0.02,
    "seed": 123,
}
_SIMULATOR_BENCH_100K_SMOKE = {
    "topology": "leaf_spine(num_leaves=4, num_spines=4, hosts_per_leaf=8)",
    "num_coflows": 50,
    "coflow_width": 40,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "coflow_arrival_rate": 0.05,
    "seed": 123,
}

#: Reference-loop calibration slice: the dict loop is O(n) per event, so at
#: 100k flows it would run for hours; its events/sec is measured on this
#: same-family 2k-flow slice instead.  Conservative — the reference's
#: per-event cost *grows* with instance size, so the reported jit-vs-
#: reference ratio underestimates the true 100k-flow speedup.
_SIMULATOR_BENCH_REF_CAL = {
    "topology": "leaf_spine(num_leaves=8, num_spines=8, hosts_per_leaf=16)",
    "num_coflows": 20,
    "coflow_width": 100,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "coflow_arrival_rate": 0.02,
    "seed": 123,
}
_SIMULATOR_BENCH_REF_CAL_SMOKE = {
    "topology": "leaf_spine(num_leaves=4, num_spines=4, hosts_per_leaf=8)",
    "num_coflows": 5,
    "coflow_width": 40,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "coflow_arrival_rate": 0.05,
    "seed": 123,
}


def _bench_json_path() -> Path:
    """Where the accumulating ``BENCH_simulator.json`` lives.

    ``REPRO_BENCH_FILE`` overrides; otherwise the enclosing repository root
    (nearest ancestor with a ``.git``), falling back to the working
    directory.
    """
    import os

    override = os.environ.get("REPRO_BENCH_FILE", "").strip()
    if override:
        return Path(override)
    cwd = Path.cwd()
    for candidate in (cwd, *cwd.parents):
        if (candidate / ".git").exists():
            return candidate / "BENCH_simulator.json"
    return cwd / "BENCH_simulator.json"


@contextmanager
def _bench_file_lock(path: Path):
    """Exclusive advisory lock serializing bench-file read-modify-write.

    Concurrent recorders (parallel bench jobs, shard workers benchmarking
    on one host) would otherwise interleave the load/append/rewrite cycle
    and drop each other's runs.  Locks a ``.lock`` sibling rather than the
    data file, so the atomic-rename rewrite never swaps the inode being
    locked.  On platforms without ``fcntl`` (Windows) it degrades to the
    historical unlocked behaviour.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_suffix(path.suffix + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with lock_path.open("w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _persist_bench_run(record: Dict[str, Any]) -> Path:
    """Append one bench run's metrics to ``BENCH_simulator.json``.

    The file holds ``{"runs": [...]}`` — every recorded run, oldest first —
    so the perf trajectory accumulates across commits.  A corrupt or
    foreign file is renamed aside rather than overwritten.  The whole
    read-modify-write runs under an exclusive file lock and the rewrite is
    a temp-file + atomic rename, so concurrent recorders append instead of
    clobbering each other and a crash mid-write never corrupts the file.
    """
    import os
    import time

    path = _bench_json_path()
    with _bench_file_lock(path):
        document: Dict[str, Any] = {"runs": []}
        if path.exists():
            try:
                loaded = json.loads(path.read_text())
                if isinstance(loaded, dict) and isinstance(
                    loaded.get("runs"), list
                ):
                    document = loaded
                else:
                    path.rename(path.with_suffix(".json.bak"))
            except (OSError, json.JSONDecodeError):
                path.rename(path.with_suffix(".json.bak"))
        # The harness (CI, a sweep driver) may pass the run's timestamp in
        # so recorded trajectories line up with its own logs.
        stamp = os.environ.get("REPRO_BENCH_TIMESTAMP", "").strip()
        if not stamp:
            stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        document["runs"].append({"timestamp": stamp, **record})
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
    return path


def _best_of(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (noise-resistant)."""
    import time

    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_simulator(
    out_dir: Path, smoke: bool = False, min_speedup: Optional[float] = None
) -> Dict[str, float]:
    """Benchmark the kernel tiers against the reference event loop.

    Two sections:

    * the classic pinned leaf-spine instance (8 coflows x 48 flows), two
      regimes (backlogged / arrivals), timing the reference loop, the array
      kernel, the jit (compiled) kernel when available, and the online
      re-planning engine — with a bit-identity assert across all of them;
    * the 100k-flow gate instance (``_SIMULATOR_BENCH_100K``): array vs
      jit ``kernel.run()`` wall time with construction untimed, asserting
      identical completions.  The reference loop is O(n) per event —
      infeasible at this scale — so its events/sec comes from the 2k-flow
      calibration slice (``_SIMULATOR_BENCH_REF_CAL``), which
      *underestimates* the true jit-vs-reference ratio.

    Hard gates (full scale only): the array kernel beats the reference by
    ``min_speedup`` on both classic regimes; the jit kernel runs (a C
    toolchain is part of the bench contract), beats the array kernel >= 3x
    and the calibrated reference >= 20x on the 100k instance.  Every run —
    smoke included — appends its per-backend events/sec to
    ``BENCH_simulator.json`` at the repo root so the perf trajectory
    accumulates across commits.

    Returns ``{regime: speedup}`` plus online and 100k-tier accounting.
    """
    from ..analysis.artifacts import strict_config_from_dict
    from ..baselines import OnlineScheme, SEBFScheme
    from ..sim import FlowLevelSimulator, make_kernel
    from ..sim import kernel_jit
    from ..workloads import CoflowGenerator

    jit_available = kernel_jit.available()
    base = dict(_SIMULATOR_BENCH_SMOKE if smoke else _SIMULATOR_BENCH)
    repeats = (3, 1) if smoke else (7, 3)  # (kernel, reference) timing runs
    regimes = [
        ("backlogged", base),
        ("arrivals", {**base, "coflow_arrival_rate": 0.1}),
    ]
    headers = [
        "regime",
        "event loop",
        "events",
        "best ms",
        "events/sec",
        "speedup vs reference",
    ]
    rows: List[List[Any]] = []
    speedups: Dict[str, float] = {}
    for label, payload in regimes:
        config = strict_config_from_dict(payload, f"simulator bench {label!r}")
        network = config.build_network()
        instance = CoflowGenerator(network, config).instance()
        plan = SEBFScheme().plan(instance, network)
        simulator = FlowLevelSimulator(network)

        kernel_result = simulator.run(instance, plan, backend="array")
        reference_result = simulator.run_reference(instance, plan)
        results = {"array": kernel_result}
        if jit_available:
            results["jit"] = simulator.run(instance, plan, backend="jit")
        for backend, result in results.items():
            mismatched = [
                fid
                for fid, completion in reference_result.flow_completion.items()
                if result.flow_completion[fid] != completion
            ]
            assert not mismatched, (
                f"{backend} kernel diverged from run_reference() on "
                f"{label}: {mismatched[:5]}"
            )
            assert result.events == reference_result.events

        kernel_time = _best_of(
            lambda: simulator.run(instance, plan, backend="array"), repeats[0]
        )
        reference_time = _best_of(
            lambda: simulator.run_reference(instance, plan), repeats[1]
        )
        speedup = reference_time / kernel_time
        speedups[label] = speedup
        events = kernel_result.events
        rows.append(
            [label, "reference", events, reference_time * 1e3,
             events / reference_time, 1.0]
        )
        rows.append(
            [label, "kernel (array)", events, kernel_time * 1e3,
             events / kernel_time, speedup]
        )
        if jit_available:
            jit_time = _best_of(
                lambda: simulator.run(instance, plan, backend="jit"), repeats[0]
            )
            speedups[f"{label}_jit"] = reference_time / jit_time
            rows.append(
                [label, "kernel (jit)", events, jit_time * 1e3,
                 events / jit_time, reference_time / jit_time]
            )
        if label == "arrivals":
            online_scheme = OnlineScheme(SEBFScheme())
            online_result = online_scheme.simulate(instance, network)
            online_time = _best_of(
                lambda: online_scheme.simulate(instance, network), repeats[0]
            )
            speedups["online_events_per_sec"] = online_result.events / online_time
            rows.append(
                [label, "online (kernel epochs)", online_result.events,
                 online_time * 1e3, online_result.events / online_time,
                 float("nan")]
            )

    # ------------------------------------------------- 100k-flow gate tier
    gate_cfg = dict(_SIMULATOR_BENCH_100K_SMOKE if smoke else _SIMULATOR_BENCH_100K)
    cal_cfg = dict(
        _SIMULATOR_BENCH_REF_CAL_SMOKE if smoke else _SIMULATOR_BENCH_REF_CAL
    )
    config = strict_config_from_dict(gate_cfg, "simulator bench '100k'")
    network = config.build_network()
    instance = CoflowGenerator(network, config).instance()
    plan = SEBFScheme().plan(instance, network).normalized(instance)
    plan.validate(instance, network)
    gate_label = "100k" if not smoke else "100k (smoke-scaled)"

    def time_kernel(backend: str, reps: int):
        """Best-of kernel.run() wall time; construction stays untimed (the
        jit tier accelerates the event loop, and at this scale result
        assembly would otherwise dominate the comparison)."""
        import time as _time

        best = float("inf")
        kernel = None
        for _ in range(reps):
            kernel = make_kernel(network, instance, plan, backend=backend)
            started = _time.perf_counter()
            kernel.run()
            best = min(best, _time.perf_counter() - started)
        return best, kernel

    gate_reps = 1 if smoke else 3
    array_time, array_kernel = time_kernel("array", gate_reps)
    gate_events = array_kernel.events
    array_evps = gate_events / array_time
    events_per_sec: Dict[str, float] = {"array": array_evps}
    rows.append(
        [gate_label, "kernel (array)", gate_events, array_time * 1e3,
         array_evps, float("nan")]
    )
    if jit_available:
        jit_time, jit_kernel = time_kernel("jit", gate_reps)
        assert jit_kernel.events == gate_events
        assert jit_kernel.flow_completion_map() == array_kernel.flow_completion_map(), (
            "jit kernel diverged from the array kernel on the 100k instance"
        )
        jit_evps = gate_events / jit_time
        events_per_sec["jit"] = jit_evps
        speedups["100k_jit_vs_array"] = array_time / jit_time
        rows.append(
            [gate_label, "kernel (jit)", gate_events, jit_time * 1e3,
             jit_evps, float("nan")]
        )

    cal_config = strict_config_from_dict(cal_cfg, "simulator bench 'ref-cal'")
    cal_network = cal_config.build_network()
    cal_instance = CoflowGenerator(cal_network, cal_config).instance()
    cal_plan = SEBFScheme().plan(cal_instance, cal_network)
    cal_sim = FlowLevelSimulator(cal_network)
    cal_result = cal_sim.run_reference(cal_instance, cal_plan)
    cal_time = _best_of(
        lambda: cal_sim.run_reference(cal_instance, cal_plan), repeats[1]
    )
    ref_cal_evps = cal_result.events / cal_time
    events_per_sec["reference (2k-flow calibration)"] = ref_cal_evps
    rows.append(
        ["ref-calibration", "reference", cal_result.events, cal_time * 1e3,
         ref_cal_evps, 1.0]
    )
    if jit_available:
        speedups["100k_jit_vs_reference"] = events_per_sec["jit"] / ref_cal_evps

    name = "simulator-smoke" if smoke else "simulator"
    title = (
        "Simulator event-loop benchmark — kernel tiers vs reference "
        f"({'smoke' if smoke else 'pinned'} instances: classic "
        f"{base['num_coflows']}x{base['coflow_width']} flows + gate "
        f"{gate_cfg['num_coflows']}x{gate_cfg['coflow_width']} flows, leaf-spine)"
    )
    _write_static_report(
        Path(out_dir) / name,
        headers,
        rows,
        title,
        {
            "suite": name,
            "instance": base,
            "gate_instance": gate_cfg,
            "speedups": speedups,
            "jit_available": jit_available,
            "events_per_sec_100k": events_per_sec,
        },
    )
    bench_path = _persist_bench_run(
        {
            "suite": name,
            "smoke": smoke,
            "instance_shape": {
                "topology": gate_cfg["topology"],
                "num_coflows": gate_cfg["num_coflows"],
                "coflow_width": gate_cfg["coflow_width"],
                "flows": gate_cfg["num_coflows"] * gate_cfg["coflow_width"],
                "events": gate_events,
            },
            "jit_available": jit_available,
            "events_per_sec": events_per_sec,
            "speedups": speedups,
        }
    )
    print(f"perf trajectory appended -> {bench_path}")

    if min_speedup is not None:
        for label in ("backlogged", "arrivals"):
            assert speedups[label] >= min_speedup, (
                f"kernel speedup {speedups[label]:.2f}x on the {label} regime "
                f"is below the required {min_speedup:.2f}x"
            )
    if not smoke:
        # The compiled tier is the point of the 100k gate: at full scale a
        # missing C toolchain fails the bench instead of silently skipping.
        assert jit_available, (
            "the jit backend is unavailable at full bench scale: "
            f"{kernel_jit.unavailable_reason()}"
        )
        assert speedups["100k_jit_vs_array"] >= 3.0, (
            f"jit kernel is only {speedups['100k_jit_vs_array']:.2f}x over "
            "the array kernel on the 100k instance (gate: 3x)"
        )
        assert speedups["100k_jit_vs_reference"] >= 20.0, (
            f"jit kernel is only {speedups['100k_jit_vs_reference']:.2f}x "
            "over the calibrated reference loop (gate: 20x)"
        )
    return speedups


# ---------------------------------------------------------- streaming suite

#: The pinned streaming-service gate instance: 16 coflows x 6 flows arriving
#: as a Poisson stream on a 24-host leaf-spine fabric — dense enough that
#: the batched policy routinely closes batches by count.  Also pinned as
#: ``specs/streaming.yaml`` (``--smoke`` shrinks it for CI).
_STREAMING_BENCH = {
    "topology": "leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=4)",
    "num_coflows": 16,
    "coflow_width": 6,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "coflow_arrival_rate": 1.0,
    "seed": 777,
}
_STREAMING_BENCH_SMOKE = {
    "topology": "leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=4)",
    "num_coflows": 5,
    "coflow_width": 4,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "coflow_arrival_rate": 1.0,
    "seed": 777,
}

#: The batching policy the suite benchmarks (vs batch-size-1): close a batch
#: at its 6th pending arrival or 6 time units after it opened.
_STREAMING_POLICY = {"max_batch": 6, "max_delay": 6.0}

#: The resident-session gate stream: 100k flows (4000 coflows x 25) arriving
#: as a dense Poisson stream on a 128-host leaf-spine fabric, re-planned at
#: every arrival — thousands of epoch splices over a deep live set, the
#: regime the resident kernel session exists for.  Also pinned as
#: ``specs/streaming-100k.yaml``.
_STREAMING_BENCH_100K = {
    "topology": "leaf_spine(num_leaves=8, num_spines=8, hosts_per_leaf=16)",
    "num_coflows": 4000,
    "coflow_width": 25,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "coflow_arrival_rate": 0.5,
    "seed": 123,
}
_STREAMING_BENCH_100K_SMOKE = {
    "topology": "leaf_spine(num_leaves=4, num_spines=4, hosts_per_leaf=8)",
    "num_coflows": 40,
    "coflow_width": 10,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "coflow_arrival_rate": 0.5,
    "seed": 123,
}


def _timed_streaming(session, instance, label: str):
    """Submit + drain (the streamed online phase) timed; splice untimed.

    Both modes pay the same final result-materialisation cost, so timing
    :meth:`StreamingScheduler.drain` instead of :meth:`finish` keeps the
    comparison about the engine, per the docstring contract of ``drain``.
    """
    import time as _time

    session.name = label
    started = _time.perf_counter()
    for coflow in instance.coflows:
        session.submit(coflow)
    session.drain()
    wall = _time.perf_counter() - started
    return session.finish(), wall


def run_streaming(
    out_dir: Path,
    smoke: bool = False,
    min_throughput_ratio: Optional[float] = None,
    min_resident_speedup: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Benchmark the streaming scheduler service on the pinned streams.

    Two sections:

    * the classic pinned stream (:data:`_STREAMING_BENCH`) through four
      configurations — {cold rebuild, warm-started assembly} x {re-plan per
      arrival, batched per :data:`_STREAMING_POLICY`} — reporting each
      session's replans/sec, arrivals per planning second, p99 decision
      latency, observed staleness, mean epoch-setup cost and online
      events/sec (events over the streamed phase's wall time minus planning
      time);
    * the 100k-flow resident gate stream (:data:`_STREAMING_BENCH_100K`):
      one resident kernel session (epoch splicing, no rebuilds) vs the
      rebuild-per-replan baseline, same replanner and per-arrival policy,
      on the jit backend.

    Invariants asserted on every run, smoke included:

    * warm-started sessions produce **exactly** the completions of their
      cold twins (``==``, no tolerance) at both batch sizes;
    * every session's observed staleness respects its policy's declared
      bound (``staleness_report()["within_bound"]``);
    * the batch-size-1 re-plan count equals the number of distinct coflow
      release times (the online-engine semantics);
    * the resident session's completions, start times and event count
      equal the rebuild baseline's **exactly** (``==``, no tolerance).

    Hard gates (full scale only): the warm-batched session processes
    arrivals per planning second at least ``min_throughput_ratio`` times
    the cold rebuild-per-arrival baseline, and the resident session's
    online events/sec is at least ``min_resident_speedup`` times the
    rebuild baseline's.  Every run — smoke included — appends its metrics
    (both resident and rebuild rates among them) to
    ``BENCH_simulator.json``.

    Returns ``{configuration: streaming_metrics()}`` plus the ratios under
    the ``"_gate"`` key.
    """
    from ..analysis.artifacts import strict_config_from_dict
    from ..baselines import SEBFScheme
    from ..circuit.given_paths import _default_horizon
    from ..sim import (
        BatchPolicy,
        ColdLPReplanner,
        StaticPlanReplanner,
        StreamingScheduler,
        WarmLPReplanner,
        kernel_jit,
    )
    from ..workloads import CoflowGenerator

    base = dict(_STREAMING_BENCH_SMOKE if smoke else _STREAMING_BENCH)
    config = strict_config_from_dict(base, "streaming bench")
    network = config.build_network()
    instance = CoflowGenerator(network, config).instance()
    # Both replanners share one pinned interval grid: the full instance's
    # default horizon (sub-instance volumes only shrink, so it stays safe).
    routed = instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )
    horizon = _default_horizon(routed, network)
    batched = BatchPolicy(**_STREAMING_POLICY)
    per_arrival = BatchPolicy(max_batch=1)
    configurations = [
        ("cold / per-arrival", lambda: ColdLPReplanner(network, horizon), per_arrival),
        ("warm / per-arrival", lambda: WarmLPReplanner(network, horizon), per_arrival),
        ("cold / batched", lambda: ColdLPReplanner(network, horizon), batched),
        ("warm / batched", lambda: WarmLPReplanner(network, horizon), batched),
    ]
    headers = [
        "configuration",
        "replans",
        "arrivals",
        "plan s",
        "replans/sec",
        "arrivals/plan-sec",
        "p99 decision ms",
        "max staleness",
        "setup ms/replan",
        "online events/sec",
    ]
    rows: List[List[Any]] = []
    metrics: Dict[str, Dict[str, float]] = {}
    results: Dict[str, Any] = {}

    def record(label: str, session, result, wall: float) -> Dict[str, float]:
        """One session's report row + metrics entry (shared by both tiers)."""
        staleness = session.staleness_report()
        assert staleness["within_bound"] == 1.0, (
            f"{label}: observed staleness {staleness['max_staleness']:.3f} "
            f"exceeds the declared bound {staleness['bound']:.3f}"
        )
        report = session.streaming_metrics()
        # Online events/sec over the streamed phase: everything the wall
        # clock saw except the planner itself — the resident session and
        # the rebuild baseline replay identical plans, so this is the
        # engine-side rate the residency gate compares.
        engine_seconds = max(wall - report["plan_seconds"], 1e-12)
        report = {
            **report,
            "online_wall_seconds": wall,
            "online_events_per_sec": report["events"] / engine_seconds,
        }
        metrics[label] = report
        results[label] = result
        rows.append(
            [
                label,
                int(report["replans"]),
                int(report["arrivals"]),
                report["plan_seconds"],
                report["replans_per_sec"],
                report["arrivals_per_plan_sec"],
                report["p99_decision_latency"] * 1e3,
                report["max_staleness"],
                report["epoch_setup_seconds"] * 1e3,
                report["online_events_per_sec"],
            ]
        )
        return report

    for label, make_replanner, policy in configurations:
        session = StreamingScheduler(network, make_replanner(), policy=policy)
        result, wall = _timed_streaming(session, instance, label)
        record(label, session, result, wall)

    releases = sorted({c.release_time for c in instance.coflows})
    assert metrics["cold / per-arrival"]["replans"] == float(len(releases)), (
        "batch-size-1 must re-plan exactly once per distinct release time"
    )
    for policy_label in ("per-arrival", "batched"):
        warm, cold = results[f"warm / {policy_label}"], results[f"cold / {policy_label}"]
        assert warm.flow_completion == cold.flow_completion, (
            f"warm-started completions diverged from the cold rebuild "
            f"({policy_label})"
        )
        assert warm.flow_start == cold.flow_start, (
            f"warm-started start times diverged from the cold rebuild "
            f"({policy_label})"
        )

    # ------------------------------------------- resident 100k gate stream
    gate_cfg = dict(_STREAMING_BENCH_100K_SMOKE if smoke else _STREAMING_BENCH_100K)
    gate_config = strict_config_from_dict(gate_cfg, "streaming bench '100k'")
    gate_network = gate_config.build_network()
    gate_instance = CoflowGenerator(gate_network, gate_config).instance()
    static_plan = SEBFScheme().plan(gate_instance, gate_network)
    jit_available = kernel_jit.available()
    if not smoke:
        # The resident gate compares compiled tiers: at full scale a
        # missing C toolchain fails the bench instead of silently skipping.
        assert jit_available, (
            "the jit backend is unavailable at full bench scale: "
            f"{kernel_jit.unavailable_reason()}"
        )
    gate_backend = "jit" if jit_available else "array"
    gate_suffix = "100k" if not smoke else "100k (smoke-scaled)"
    for resident in (True, False):
        mode = "resident" if resident else "rebuild"
        label = f"{mode} / {gate_suffix}"
        session = StreamingScheduler(
            gate_network,
            StaticPlanReplanner(static_plan),
            policy=BatchPolicy(max_batch=1),
            backend=gate_backend,
            resident=resident,
        )
        result, wall = _timed_streaming(session, gate_instance, label)
        record(f"{mode} / 100k", session, result, wall)

    res_report = metrics["resident / 100k"]
    reb_report = metrics["rebuild / 100k"]
    res_result = results["resident / 100k"]
    reb_result = results["rebuild / 100k"]
    assert res_result.flow_completion == reb_result.flow_completion, (
        "resident-session completions diverged from the rebuild baseline"
    )
    assert res_result.flow_start == reb_result.flow_start, (
        "resident-session start times diverged from the rebuild baseline"
    )
    assert res_report["events"] == reb_report["events"], (
        "resident-session event count diverged from the rebuild baseline"
    )
    resident_speedup = (
        res_report["online_events_per_sec"] / reb_report["online_events_per_sec"]
    )

    ratio = (
        metrics["warm / batched"]["arrivals_per_plan_sec"]
        / metrics["cold / per-arrival"]["arrivals_per_plan_sec"]
    )
    metrics["_gate"] = {
        "throughput_ratio": ratio,
        "resident_speedup": resident_speedup,
    }

    name = "streaming-smoke" if smoke else "streaming"
    title = (
        "Streaming scheduler benchmark — warm batched re-planning vs cold "
        f"rebuild per arrival, plus the resident-session gate "
        f"({'smoke' if smoke else 'pinned'} streams: "
        f"{base['num_coflows']} coflows x {base['coflow_width']} flows, "
        f"batch policy {_STREAMING_POLICY['max_batch']} / "
        f"{_STREAMING_POLICY['max_delay']:g}; resident gate "
        f"{gate_cfg['num_coflows']} x {gate_cfg['coflow_width']} flows, "
        "re-plan per arrival)"
    )
    _write_static_report(
        Path(out_dir) / name,
        headers,
        rows,
        title,
        {
            "suite": name,
            "instance": base,
            "gate_instance": gate_cfg,
            "policy": dict(_STREAMING_POLICY),
            "metrics": metrics,
        },
    )
    bench_path = _persist_bench_run(
        {
            "suite": name,
            "smoke": smoke,
            "instance_shape": {
                "topology": base["topology"],
                "num_coflows": base["num_coflows"],
                "coflow_width": base["coflow_width"],
                "flows": base["num_coflows"] * base["coflow_width"],
            },
            "gate_instance_shape": {
                "topology": gate_cfg["topology"],
                "num_coflows": gate_cfg["num_coflows"],
                "coflow_width": gate_cfg["coflow_width"],
                "flows": gate_cfg["num_coflows"] * gate_cfg["coflow_width"],
                "events": res_report["events"],
            },
            "gate_backend": gate_backend,
            "policy": dict(_STREAMING_POLICY),
            "streaming": {
                label: report
                for label, report in metrics.items()
                if label != "_gate"
            },
            "throughput_ratio": ratio,
            "resident_speedup": resident_speedup,
        }
    )
    print(f"perf trajectory appended -> {bench_path}")

    if min_throughput_ratio is not None:
        assert ratio >= min_throughput_ratio, (
            f"warm batched throughput is only {ratio:.2f}x the cold "
            f"per-arrival baseline (gate: {min_throughput_ratio:.1f}x)"
        )
    if min_resident_speedup is not None:
        assert resident_speedup >= min_resident_speedup, (
            f"the resident session is only {resident_speedup:.2f}x the "
            f"rebuild baseline's online events/sec "
            f"(gate: {min_resident_speedup:.1f}x)"
        )
    return metrics


# ----------------------------------------------------------- pipeline suite

#: The pinned pipeline-stage benchmark instance: 6 coflows x 8 flows each on
#: a 24-host leaf-spine fabric (``--smoke`` shrinks it for CI).
_PIPELINE_BENCH = {
    "topology": "leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=4)",
    "num_coflows": 6,
    "coflow_width": 8,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "seed": 321,
}
_PIPELINE_BENCH_SMOKE = {
    "topology": "leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=4)",
    "num_coflows": 2,
    "coflow_width": 4,
    "mean_flow_size": 6.0,
    "release_rate": 1.0,
    "seed": 321,
}

#: Compositions timed by the pipeline suite, chosen so the table separates
#: the cost centres: pure-heuristic stages, the LP solve inside the order
#: stage, the LP solve inside the route stage, and the hinted lp+lp case
#: where one solve serves both stages.
_PIPELINE_BENCH_SPECS = (
    "pipeline(router=random, order=mct)",
    "pipeline(router=balanced, order=sebf)",
    "pipeline(router=balanced, order=lp)",
    "pipeline(router=lp, order=lp)",
)


def run_pipeline_bench(out_dir: Path, smoke: bool = False) -> Dict[str, Dict[str, float]]:
    """Benchmark per-stage plan time (route vs order vs LP solve).

    For each composition of :data:`_PIPELINE_BENCH_SPECS`, times the router
    and orderer stages separately on the pinned leaf-spine instance
    (best-of-``repeats`` wall time), plus the end-to-end
    :meth:`~repro.baselines.pipeline.PipelineScheme.plan` call.  The ``lp``
    stages' time *is* the LP solve time, so the rows read as a breakdown:
    ``router=balanced, order=lp`` isolates the ordering LP, ``router=lp,
    order=lp`` shows one solve serving both stages (the order stage
    consumes the router's completion-time hint — asserted, not just
    timed).

    Returns ``{composition: {"route_ms", "order_ms", "plan_ms"}}`` and
    writes the usual report artifacts under ``out_dir/pipeline[-smoke]/``.
    """
    from ..analysis.artifacts import scheme_from_spec, strict_config_from_dict
    from ..baselines.stages import PlanContext
    from ..workloads import CoflowGenerator

    base = dict(_PIPELINE_BENCH_SMOKE if smoke else _PIPELINE_BENCH)
    repeats = 2 if smoke else 5
    config = strict_config_from_dict(base, "pipeline bench")
    network = config.build_network()
    instance = CoflowGenerator(network, config).instance()

    headers = ["composition", "route ms", "order ms", "plan ms", "lp solve in"]
    rows: List[List[Any]] = []
    timings: Dict[str, Dict[str, float]] = {}
    for spec_text in _PIPELINE_BENCH_SPECS:
        scheme = scheme_from_spec(spec_text)

        route_time = _best_of(
            lambda: scheme.router.route(PlanContext(instance, network)), repeats
        )
        # One routed context is prepared outside the timer so the order
        # stage is measured alone (LPOrderer re-solves on every call when
        # it has no hint, which is exactly the cost being isolated).
        context = PlanContext(instance, network)
        context.paths = scheme.router.route(context)
        order_time = _best_of(lambda: scheme.orderer.order(context), repeats)
        plan_time = _best_of(lambda: scheme.plan(instance, network), repeats)

        hinted = context.order_hint is not None
        if scheme.router.key == "lp":
            assert hinted, "lp router must publish its order hint"
            lp_in = "route (hinted order)"
        elif scheme.orderer.key == "lp":
            lp_in = "order"
        else:
            lp_in = "-"
        timings[spec_text] = {
            "route_ms": route_time * 1e3,
            "order_ms": order_time * 1e3,
            "plan_ms": plan_time * 1e3,
        }
        rows.append(
            [scheme.name, route_time * 1e3, order_time * 1e3, plan_time * 1e3, lp_in]
        )

    name = "pipeline-smoke" if smoke else "pipeline"
    title = (
        "Pipeline stage benchmark — per-stage plan time "
        f"({'smoke' if smoke else 'pinned'} instance: {base['num_coflows']} "
        f"coflows x {base['coflow_width']} flows, leaf-spine)"
    )
    _write_static_report(
        Path(out_dir) / name,
        headers,
        rows,
        title,
        {"suite": name, "instance": base, "timings": timings},
    )
    return timings


# ------------------------------------------------------------- smoke passes

def smoke_scenario_matrix(workers: int = 2) -> None:
    """Tiny end-to-end pass: build -> solve -> simulate -> store -> resume.

    Runs the smoke-sized scenario matrix twice against one temporary store
    with a worker pool and asserts the second pass re-simulates nothing and
    reproduces identical values — the CI guarantee for the engine's
    parallel + resume path.
    """
    spec = scenario_matrix_spec().smoke()
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(Path(tmp) / "runstore.jsonl")
        print(f"scenario smoke: cold pass ({workers} workers)")
        cold = run_spec(spec, store, workers=workers)
        print(f"  {stats_summary(cold.stats)}")
        print("scenario smoke: warm pass (resume from store)")
        warm = run_spec(spec, store, workers=workers)
        print(f"  {stats_summary(warm.stats)}")
        assert cold.stats.executed > 0, "cold pass executed nothing"
        assert warm.stats.executed == 0, "warm run re-simulated tasks"
        for a, b in zip(cold.result.points, warm.result.points):
            assert a.values == b.values, a.label
    print("scenario smoke: OK (parallel sweep + resume verified)")


# ---------------------------------------------------------------- dispatch

def _warn_ignored(suite: str, flags: Dict[str, bool]) -> None:
    """Tell the operator which flags the chosen suite does not use —
    silently dropping them would misrepresent what actually ran."""
    ignored = [name for name, is_set in flags.items() if is_set]
    if ignored:
        print(
            f"repro bench: suite {suite!r} does not use {', '.join(ignored)} "
            "(ignored)",
            file=sys.stderr,
        )


def run_suite(
    suite: str,
    out_dir: Path,
    workers: int = 0,
    tries: int = 2,
    paper_scale: bool = False,
    smoke: bool = False,
) -> int:
    """Run one named suite and print its report; returns an exit code."""
    out_dir = Path(out_dir)
    if suite == "table1":
        # Table 1 measures four fixed single instances: no engine, no sweep.
        _warn_ignored(
            suite,
            {"--workers": workers != 0, "--paper-scale": paper_scale, "--smoke": smoke},
        )
        run_table1(out_dir)
        print((out_dir / "table1" / "report.txt").read_text())
        return 0
    if suite == "headline":
        _, width_run, count_run = run_headline(
            out_dir, workers, paper_scale, tries, smoke=smoke
        )
        name = "headline-smoke" if smoke else "headline"
        print((out_dir / name / "report.txt").read_text())
        print(stats_summary(width_run.stats), " [width pool]")
        print(stats_summary(count_run.stats), " [count pool]")
        return 0
    if suite == "simulator":
        # A wall-clock microbenchmark: no engine, no sweep.  The hard >= 5x
        # gate only applies to the full pinned instance — CI smoke runs are
        # on shared, noisy machines and only require the kernel to win.
        _warn_ignored(
            suite,
            {"--workers": workers != 0, "--paper-scale": paper_scale},
        )
        speedups = run_simulator(
            out_dir, smoke=smoke, min_speedup=1.0 if smoke else 5.0
        )
        name = "simulator-smoke" if smoke else "simulator"
        print((Path(out_dir) / name / "report.txt").read_text())
        print(
            f"array kernel speedup: {speedups['backlogged']:.2f}x backlogged, "
            f"{speedups['arrivals']:.2f}x with arrivals"
        )
        if "100k_jit_vs_array" in speedups:
            print(
                f"jit kernel, 100k-flow gate: "
                f"{speedups['100k_jit_vs_array']:.2f}x over array, "
                f"{speedups['100k_jit_vs_reference']:.2f}x over the "
                "calibrated reference"
            )
        return 0
    if suite == "streaming":
        # A wall-clock service benchmark: no engine, no sweep.  The hard
        # >= 3x throughput gate only applies at full scale — CI smoke runs
        # are on shared, noisy machines and only require batching to win.
        _warn_ignored(
            suite,
            {"--workers": workers != 0, "--paper-scale": paper_scale},
        )
        metrics = run_streaming(
            out_dir,
            smoke=smoke,
            min_throughput_ratio=1.0 if smoke else 3.0,
            min_resident_speedup=None if smoke else 10.0,
        )
        name = "streaming-smoke" if smoke else "streaming"
        print((Path(out_dir) / name / "report.txt").read_text())
        print(
            "warm batched vs cold per-arrival throughput: "
            f"{metrics['_gate']['throughput_ratio']:.2f}x "
            f"(p99 decision latency "
            f"{metrics['warm / batched']['p99_decision_latency'] * 1e3:.1f} ms)"
        )
        print(
            "resident session vs rebuild-per-replan, 100k-flow stream: "
            f"{metrics['_gate']['resident_speedup']:.2f}x online events/sec "
            f"(setup {metrics['resident / 100k']['epoch_setup_seconds'] * 1e3:.2f} "
            f"vs {metrics['rebuild / 100k']['epoch_setup_seconds'] * 1e3:.2f} "
            "ms/replan)"
        )
        return 0
    if suite == "pipeline":
        # A wall-clock stage microbenchmark: no engine, no sweep.
        _warn_ignored(
            suite,
            {"--workers": workers != 0, "--paper-scale": paper_scale},
        )
        run_pipeline_bench(out_dir, smoke=smoke)
        name = "pipeline-smoke" if smoke else "pipeline"
        print((out_dir / name / "report.txt").read_text())
        return 0
    if suite == "scenario-matrix" and smoke:
        _warn_ignored(suite, {"--paper-scale": paper_scale})
        smoke_scenario_matrix(workers=max(workers, 2))
        return 0

    builders = {
        "fig3": lambda: fig3_spec(paper_scale, tries),
        "fig4": lambda: fig4_spec(paper_scale, tries),
        "scenario-matrix": lambda: scenario_matrix_spec(tries=tries),
        "online": lambda: online_spec(tries=tries),
        "pipeline-matrix": lambda: pipeline_matrix_spec(tries=tries),
    }
    if suite in ("scenario-matrix", "online", "pipeline-matrix"):
        # These suites have one fixed size; the paper-scale switch only
        # applies to the figure sweeps.
        _warn_ignored(suite, {"--paper-scale": paper_scale})
    spec = builders[suite]()
    if smoke:
        spec = spec.smoke()
    run, paths = run_sweep_suite(spec, out_dir, workers)
    print(
        render_report(
            run.result,
            spec.display_title(),
            spec.reference,
            fmt="text",
            extras=run.extras,
        )
    )
    if "LP-Based" in spec.schemes:
        references = [s for s in spec.schemes if s != "LP-Based"]
        print()
        print(improvement_summary(run.result, "LP-Based", references))
    print()
    print(stats_summary(run.stats))
    for kind in ("run", "text", "markdown", "csv"):
        print(f"  {kind:<8} -> {paths[kind]}")
    return 0


def configure(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``bench`` subparser."""
    parser = subparsers.add_parser(
        "bench",
        help=(
            "run a benchmark suite (fig3, fig4, table1, headline, "
            "scenario-matrix, online, simulator, streaming, "
            "pipeline-matrix, pipeline)"
        ),
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("suite", choices=SUITES, help="which suite to run")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("artifacts"),
        help="artifact directory (default: ./artifacts)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, help="engine worker processes"
    )
    parser.add_argument(
        "--tries", type=int, default=2, help="random tries per sweep point"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's parameters (k=8 fat-tree; slow)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized pass (for scenario-matrix: includes the resume check)",
    )
    parser.set_defaults(func=execute)


def execute(args: argparse.Namespace) -> int:
    """Dispatch ``repro bench`` to the named suite."""
    return run_suite(
        args.suite,
        out_dir=args.out,
        workers=args.workers,
        tries=args.tries,
        paper_scale=args.paper_scale,
        smoke=args.smoke,
    )
