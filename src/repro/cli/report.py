"""``repro report`` — render an existing run store, executing nothing.

Re-renders the paper-style tables for a sweep spec from its run store
alone: no topology is simulated, no LP is solved, no instance is generated
(networks are only built to recompute store keys).  Because ``report`` and
``sweep`` share the same row builders and float formats, a report rendered
from the store of a completed sweep is byte-identical to the artifact files
the sweep wrote.

A partially filled store — an interrupted sweep — still renders: missing
grid cells are reported on stderr and contribute no values (schemes absent
at a point show as ``nan``).

Sharded sweeps report the same way: when ``--store`` names a directory (or
``<out>/<spec name>/shards/`` exists and no single-file store does), the
shard files are merged in memory with the fabric's semantics — torn shard
tails skipped with a warning, claim markers dropped — and any shard the
fleet manifest expects but whose file is absent is named on stderr.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Optional

from ..analysis.artifacts import export_artifacts, results_from_store
from ..analysis.engine import EngineRunStats
from ..analysis.fabric import ShardedRunStore
from ..analysis.report import REPORT_FORMATS, render_report
from ..analysis.runstore import RunStore
from .sweep import (
    add_spec_arguments,
    resolve_shard_root,
    resolve_spec,
    resolve_store_path,
)


def configure(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``report`` subparser."""
    parser = subparsers.add_parser(
        "report",
        help="render a run store into the paper's tables (no re-running)",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_spec_arguments(parser)
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=REPORT_FORMATS,
        default="text",
        help="format printed to stdout (default: text)",
    )
    parser.add_argument(
        "--export",
        action="store_true",
        help="also (re)write the report artifacts under <out>/<spec name>/",
    )
    parser.set_defaults(func=execute)


def _recorded_stats(args: argparse.Namespace, spec) -> Optional[EngineRunStats]:
    """The engine stats the sweep wrote to run.json, if still on disk.

    ``--export`` rewrites run.json; re-using the recorded stats keeps the
    sweep's execution accounting instead of silently dropping it.
    """
    metadata_path = Path(args.out) / spec.name / "run.json"
    if not metadata_path.exists():
        return None
    try:
        recorded = json.loads(metadata_path.read_text()).get("engine")
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(recorded, dict):
        return None
    known = {f.name for f in dataclasses.fields(EngineRunStats)}
    return EngineRunStats(**{k: v for k, v in recorded.items() if k in known})


def _open_store(args: argparse.Namespace, spec) -> Optional[RunStore]:
    """Open the spec's store: single-file, sharded directory, or neither.

    Resolution order: an explicit ``--store`` (file or directory), the
    default single-file location, then the default sharded fleet directory
    — so ``repro report`` works on a ``--shards`` sweep with no extra
    flags.  Returns ``None`` (after a stderr message) when nothing exists.
    """
    store_path = resolve_store_path(args, spec)
    if store_path.is_dir():
        return ShardedRunStore(store_path)
    if store_path.exists():
        return RunStore(store_path)
    shard_root = resolve_shard_root(args, spec)
    if args.store is None and shard_root.is_dir():
        return ShardedRunStore(shard_root)
    print(f"repro report: no run store at {store_path}", file=sys.stderr)
    print("run `repro sweep` first, or pass --store", file=sys.stderr)
    return None


def execute(args: argparse.Namespace) -> int:
    """Render the store; exit 1 when the store is empty or absent."""
    spec = resolve_spec(args)
    store = _open_store(args, spec)
    if store is None:
        return 1
    store_path = store.path
    if isinstance(store, ShardedRunStore):
        for shard_id in store.missing_shards():
            print(
                f"repro report: shard {shard_id} of {store.root} is missing "
                "(lost worker?); its tasks render as nan",
                file=sys.stderr,
            )
    if len(store) == 0:
        print(f"repro report: run store {store_path} is empty", file=sys.stderr)
        print("run `repro sweep` first, or pass --store", file=sys.stderr)
        return 1

    metrics = [spec.metric, *spec.extra_metrics]
    results, missing_counts, fingerprints = results_from_store(spec, store, metrics)
    result = results[spec.metric]
    missing = missing_counts[spec.metric]
    if missing:
        total = spec.total_tasks()
        print(
            f"repro report: store covers {total - missing}/{total} tasks "
            "(sweep incomplete; missing cells render as nan)",
            file=sys.stderr,
        )
    if result.has_failures():
        print(
            f"repro report: {result.total_failures()} task(s) recorded as "
            "permanent failures (failed cells render as nan; re-run the "
            "sweep with --retry-failed to try them again)",
            file=sys.stderr,
        )
    extras = {metric: results[metric] for metric in spec.extra_metrics}

    print(
        render_report(
            result, spec.display_title(), spec.reference, fmt=args.fmt, extras=extras
        )
    )
    if args.export:
        paths = export_artifacts(
            args.out,
            spec,
            result,
            stats=_recorded_stats(args, spec),
            fingerprints=fingerprints,
            store=store,
            extras=extras,
        )
        for kind in ("run", "text", "markdown", "csv"):
            print(f"  {kind:<8} -> {paths[kind]}", file=sys.stderr)
    return 0
