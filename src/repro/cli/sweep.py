"""``repro sweep`` — run a declarative sweep spec end-to-end.

Loads a YAML/JSON sweep spec (see :mod:`repro.analysis.artifacts`), drives
the experiment engine over its (point x try x scheme) grid — optionally
over ``--workers`` processes — and exports durable artifacts under
``--out/<spec name>/``: the resumable run store, ``run.json`` metadata with
full provenance, and the paper-style tables as text/Markdown/CSV.

Resume is the default: the run store is loaded if it exists and tasks
already recorded are never re-executed, so an interrupted sweep continues
where it stopped and a completed sweep re-invoked is pure aggregation.
``--fresh`` deletes the store first for a guaranteed cold run.

The sweep is fault-tolerant: transient task errors (timeouts, killed
workers) are retried with backoff up to ``--max-retries`` times, and
permanent errors (e.g. an infeasible LP) become structured *failure
records* in the run store — the sweep completes, the failed cells render
as ``nan`` plus a failures block, and the exit status reflects coverage:
0 when at least ``--min-coverage`` of the grid succeeded (default 1.0,
i.e. any failure is nonzero), 3 otherwise.  ``--retry-failed`` re-runs
recorded failures on resume; ``--inject-faults`` enables the
deterministic chaos harness (see docs/robustness.md).

``--shards N`` distributes the sweep over the fabric (docs/fabric.md):
N shard workers cooperatively drain the same grid through a sharded run
store (default ``<out>/<spec name>/shards/``), each claiming tasks with
idempotent claim markers and stealing stale claims after ``--steal-after``
seconds.  Without ``--shard-id`` this process coordinates — it spawns the
N workers, waits, merges every shard into one report, and exits 3 naming
any lost shard; with ``--shard-id K`` it *is* worker K (run one per host
against a shared directory for multi-host sweeps).  A lost shard degrades
to exit 3 with a stderr warning, never to a silently partial report.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from ..analysis.artifacts import (
    SweepSpec,
    export_artifacts,
    load_spec,
    result_from_store,
    results_from_store,
    run_spec,
    stats_summary,
)
from ..analysis.engine import EngineRunStats
from ..analysis.fabric import ShardedRunStore, Worker
from ..analysis.fabric.store import shard_filename
from ..analysis.report import render_report
from ..analysis.runstore import RunStore
from ..faults import FaultConfig

#: Exit status when the sweep completed but coverage fell below
#: ``--min-coverage`` (distinct from argparse's 2 and generic failure's 1).
EXIT_COVERAGE = 3


def add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by ``sweep`` and ``report`` (must match for the
    two commands to agree on run-store keys)."""
    parser.add_argument("spec", type=Path, help="YAML/JSON sweep spec file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the spec to CI size (1 try, tiny instances, same grid)",
    )
    parser.add_argument(
        "--tries", type=int, help="override the spec's tries-per-point"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("artifacts"),
        help="artifact directory (default: ./artifacts)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        help="run store JSONL path (default: <out>/<spec name>/runstore.jsonl)",
    )


def resolve_spec(args: argparse.Namespace) -> SweepSpec:
    """Load the spec and apply the shared ``--smoke`` / ``--tries`` transforms.

    Invalid spec documents — unknown keys, malformed scheme specs, bad
    configs — exit cleanly with the validation message (which names the bad
    stage/scheme and lists the valid choices) instead of a traceback.
    """
    try:
        spec = load_spec(args.spec)
    except ValueError as error:
        raise SystemExit(f"repro: invalid sweep spec {args.spec}: {error}")
    if args.smoke:
        spec = spec.smoke()
    if args.tries is not None:
        spec = replace(spec, tries=args.tries)
    return spec


def resolve_store_path(args: argparse.Namespace, spec: SweepSpec) -> Path:
    """The run store location ``sweep`` writes and ``report`` reads."""
    if args.store is not None:
        return args.store
    return args.out / spec.name / "runstore.jsonl"


def configure(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``sweep`` subparser."""
    parser = subparsers.add_parser(
        "sweep",
        help="run a YAML/JSON sweep spec on the experiment engine",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_spec_arguments(parser)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="engine worker processes (0 = serial, >=2 = process pool)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="delete the run store first (a cold run instead of a resume)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per task for transient errors (default: 2)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="per-task wall-clock limit; an expired task is retried as "
        "transient, then recorded as a failure (default: none)",
    )
    parser.add_argument(
        "--lp-time-limit",
        type=float,
        metavar="SECONDS",
        help="time budget handed to the HiGHS solver for every LP solve "
        "(default: none)",
    )
    parser.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-run tasks recorded as permanent failures in the store "
        "(default: resume skips them)",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=1.0,
        metavar="FRACTION",
        help="minimum fraction of tasks that must succeed for exit status 0 "
        f"(default: 1.0 — any failure exits {EXIT_COVERAGE})",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help='deterministic fault injection, e.g. "rate=0.1,seed=7" or '
        '"rate=1.0,kinds=lp+timeout,seed=3,delay=0.2" (overrides the '
        "spec's own `faults` entry; see docs/robustness.md)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="distribute the sweep over N cooperating shard workers via a "
        "sharded run store (default: 1 = the classic single store; "
        "--store then names a directory; see docs/fabric.md)",
    )
    parser.add_argument(
        "--shard-id",
        type=int,
        metavar="K",
        help="act as shard worker K of --shards instead of coordinating "
        "(run one per process/host against a shared store directory)",
    )
    parser.add_argument(
        "--steal-after",
        type=float,
        default=3.0,
        metavar="SECONDS",
        help="seconds without fleet progress before a shard steals tasks "
        "claimed by a presumed-dead peer (default: 3)",
    )
    parser.set_defaults(func=execute)


def execute(args: argparse.Namespace) -> int:
    """Run the sweep, write artifacts, and exit by coverage."""
    spec = resolve_spec(args)
    if not 0.0 <= args.min_coverage <= 1.0:
        raise SystemExit(
            f"repro sweep: --min-coverage must be in [0, 1], "
            f"got {args.min_coverage}"
        )
    faults = None
    if args.inject_faults is not None:
        try:
            faults = FaultConfig.from_spec(args.inject_faults)
        except ValueError as error:
            raise SystemExit(f"repro sweep: invalid --inject-faults: {error}")
    if args.shards < 1:
        raise SystemExit("repro sweep: --shards must be at least 1")
    if args.shard_id is not None or args.shards > 1:
        root = resolve_shard_root(args, spec)
        if args.shard_id is not None:
            return _execute_shard(args, spec, faults, root)
        return _execute_fleet(args, spec, root)
    store_path = resolve_store_path(args, spec)
    if args.fresh and store_path.exists():
        store_path.unlink()
    store = RunStore(store_path)
    resumed = len(store)
    if resumed:
        print(f"resuming from {store_path} ({resumed} recorded task(s))")

    run = run_spec(
        spec,
        store,
        workers=args.workers,
        faults=faults,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        retry_failed=args.retry_failed,
        lp_time_limit=args.lp_time_limit,
    )
    paths = export_artifacts(
        args.out, spec, run.result, run.stats, run.fingerprints, store,
        extras=run.extras,
    )

    print(
        render_report(
            run.result,
            spec.display_title(),
            spec.reference,
            fmt="text",
            extras=run.extras,
        )
    )
    print()
    print(stats_summary(run.stats))
    for kind in ("run", "text", "markdown", "csv"):
        print(f"  {kind:<8} -> {paths[kind]}")
    print(f"  store    -> {store_path}")

    coverage = run.stats.coverage
    if run.stats.failed:
        print(
            f"repro sweep: {run.stats.failed} task(s) failed permanently "
            f"(coverage {coverage:.1%}); failed cells render as nan — "
            "re-run with --retry-failed to try them again",
            file=sys.stderr,
        )
    if coverage < args.min_coverage:
        print(
            f"repro sweep: coverage {coverage:.1%} is below "
            f"--min-coverage {args.min_coverage:.1%}",
            file=sys.stderr,
        )
        return EXIT_COVERAGE
    return 0


# ------------------------------------------------------------------- fabric

def resolve_shard_root(args: argparse.Namespace, spec: SweepSpec) -> Path:
    """The sharded store *directory* for ``--shards``/``--shard-id`` runs."""
    if args.store is not None:
        return args.store
    return args.out / spec.name / "shards"


def _grid_coverage(spec: SweepSpec, store: RunStore) -> float:
    """Grid coverage of a (possibly partial) store: successes / tasks.

    Unlike :attr:`EngineRunStats.coverage` this also counts *missing*
    cells — a lost shard's never-run tasks — as uncovered, which is what
    the sharded exit-code decision needs.
    """
    result, missing, _ = result_from_store(spec, store)
    total = spec.total_tasks()
    if total <= 0:
        return 1.0
    return (total - missing - result.total_failures()) / total


def _execute_shard(
    args: argparse.Namespace, spec: SweepSpec, faults, root: Path
) -> int:
    """Run as one shard worker of the fleet (``--shard-id K``)."""
    if not 0 <= args.shard_id < args.shards:
        raise SystemExit(
            f"repro sweep: --shard-id {args.shard_id} out of range for "
            f"--shards {args.shards}"
        )
    if args.fresh:
        # A shard may only reset what it owns; deleting the shared root
        # under live peers is the coordinator's call, not a worker's.
        for stale in (
            root / shard_filename(args.shard_id),
            root / f"shard-{args.shard_id:04d}.stats.json",
        ):
            if stale.exists():
                stale.unlink()
    store = ShardedRunStore(root, shard_id=args.shard_id, shards=args.shards)
    resumed = len(store)
    if resumed:
        print(f"resuming from {root} ({resumed} recorded task(s))")
    worker = Worker(
        spec,
        store,
        workers=args.workers,
        steal_after=args.steal_after,
        faults=faults,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        retry_failed=args.retry_failed,
        lp_time_limit=args.lp_time_limit,
    )
    stats = worker.run()
    stats.write(root)
    print(stats.summary())
    store.refresh(final=True)
    coverage = _grid_coverage(spec, store)
    if coverage < args.min_coverage:
        print(
            f"repro sweep: shard {args.shard_id}: merged grid coverage "
            f"{coverage:.1%} is below --min-coverage "
            f"{args.min_coverage:.1%}",
            file=sys.stderr,
        )
        return EXIT_COVERAGE
    return 0


def _shard_command(
    args: argparse.Namespace, root: Path, shard_id: int
) -> List[str]:
    """The child command line for one spawned shard worker."""
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        str(args.spec),
        "--shards",
        str(args.shards),
        "--shard-id",
        str(shard_id),
        "--store",
        str(root),
        "--out",
        str(args.out),
        "--workers",
        str(args.workers),
        "--max-retries",
        str(args.max_retries),
        "--steal-after",
        str(args.steal_after),
        # Children always exit by crash, never by coverage: the coordinator
        # owns the --min-coverage decision over the *merged* store.
        "--min-coverage",
        "0",
    ]
    if args.smoke:
        cmd.append("--smoke")
    if args.tries is not None:
        cmd.extend(["--tries", str(args.tries)])
    if args.task_timeout is not None:
        cmd.extend(["--task-timeout", str(args.task_timeout)])
    if args.lp_time_limit is not None:
        cmd.extend(["--lp-time-limit", str(args.lp_time_limit)])
    if args.retry_failed:
        cmd.append("--retry-failed")
    if args.inject_faults is not None:
        cmd.extend(["--inject-faults", args.inject_faults])
    return cmd


def _fleet_environment() -> Dict[str, str]:
    """Child env with this package's source tree on ``PYTHONPATH``."""
    import repro

    env = os.environ.copy()
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    previous = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not previous else os.pathsep.join([src_dir, previous])
    )
    return env


def _execute_fleet(args: argparse.Namespace, spec: SweepSpec, root: Path) -> int:
    """Coordinate a ``--shards N`` fleet: spawn, wait, merge, report."""
    started = time.perf_counter()
    if args.fresh and root.exists():
        shutil.rmtree(root)
    root.mkdir(parents=True, exist_ok=True)
    env = _fleet_environment()
    print(f"repro sweep: launching {args.shards} shard worker(s) on {root}")
    procs = {
        shard_id: subprocess.Popen(_shard_command(args, root, shard_id), env=env)
        for shard_id in range(args.shards)
    }
    exit_codes = {shard_id: proc.wait() for shard_id, proc in procs.items()}

    view = ShardedRunStore(root, shards=args.shards)
    shard_stats: Dict[int, Dict] = {}
    for shard_id in range(args.shards):
        stats_path = root / f"shard-{shard_id:04d}.stats.json"
        if stats_path.exists():
            try:
                shard_stats[shard_id] = json.loads(stats_path.read_text())
            except (OSError, json.JSONDecodeError):
                pass
    lost = sorted(
        set(view.missing_shards())
        | {k for k, code in exit_codes.items() if code != 0}
        | {k for k in range(args.shards) if k not in shard_stats}
    )

    metrics = [spec.metric, *spec.extra_metrics]
    results, missing_counts, fingerprints = results_from_store(
        spec, view, metrics
    )
    result = results[spec.metric]
    missing = missing_counts[spec.metric]
    extras = {metric: results[metric] for metric in spec.extra_metrics}
    total = spec.total_tasks()
    executed = sum(s.get("executed", 0) for s in shard_stats.values())
    stats = EngineRunStats(
        total_tasks=total,
        cached=max(0, total - executed),
        executed=executed,
        workers=args.workers or 1,
        seconds=time.perf_counter() - started,
        failed=result.total_failures(),
        retried=sum(s.get("retried", 0) for s in shard_stats.values()),
        pool_restarts=sum(
            s.get("pool_restarts", 0) for s in shard_stats.values()
        ),
        skipped_records=view.skipped_lines,
    )
    paths = export_artifacts(
        args.out,
        spec,
        result,
        stats,
        fingerprints,
        view,
        extras=extras,
        extra_metadata={
            "fleet": {
                "shards": args.shards,
                "store": str(root),
                "exit_codes": exit_codes,
                "lost_shards": lost,
                "shard_stats": shard_stats,
            }
        },
    )

    print(
        render_report(
            result, spec.display_title(), spec.reference, fmt="text",
            extras=extras,
        )
    )
    print()
    print(stats_summary(stats))
    for shard_id in sorted(shard_stats):
        recorded = shard_stats[shard_id]
        print(
            f"  shard {shard_id}: {recorded.get('executed', 0)} executed, "
            f"{recorded.get('cached', 0)} cached, "
            f"{recorded.get('ceded', 0)} ceded, "
            f"{recorded.get('stolen', 0)} stolen, "
            f"{recorded.get('seconds', 0.0):.2f}s"
        )
    for kind in ("run", "text", "markdown", "csv"):
        print(f"  {kind:<8} -> {paths[kind]}")
    print(f"  store    -> {root}")

    coverage = (total - missing - stats.failed) / total if total else 1.0
    status = 0
    for shard_id in lost:
        print(
            f"repro sweep: shard {shard_id} was lost (worker exit "
            f"{exit_codes.get(shard_id)}, store file "
            f"{root / shard_filename(shard_id)}); re-run "
            f"`repro sweep {args.spec} --shards {args.shards} --shard-id "
            f"{shard_id} --store {root}` to resume it",
            file=sys.stderr,
        )
    if stats.failed:
        print(
            f"repro sweep: {stats.failed} task(s) failed permanently "
            f"(coverage {coverage:.1%}); failed cells render as nan — "
            "re-run with --retry-failed to try them again",
            file=sys.stderr,
        )
    if lost and args.min_coverage > 0:
        print(
            f"repro sweep: {len(lost)} lost shard(s) "
            f"{lost}; the merged report may be partial",
            file=sys.stderr,
        )
        status = EXIT_COVERAGE
    if coverage < args.min_coverage:
        print(
            f"repro sweep: coverage {coverage:.1%} is below "
            f"--min-coverage {args.min_coverage:.1%}",
            file=sys.stderr,
        )
        status = EXIT_COVERAGE
    return status
