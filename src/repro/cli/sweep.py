"""``repro sweep`` — run a declarative sweep spec end-to-end.

Loads a YAML/JSON sweep spec (see :mod:`repro.analysis.artifacts`), drives
the experiment engine over its (point x try x scheme) grid — optionally
over ``--workers`` processes — and exports durable artifacts under
``--out/<spec name>/``: the resumable run store, ``run.json`` metadata with
full provenance, and the paper-style tables as text/Markdown/CSV.

Resume is the default: the run store is loaded if it exists and tasks
already recorded are never re-executed, so an interrupted sweep continues
where it stopped and a completed sweep re-invoked is pure aggregation.
``--fresh`` deletes the store first for a guaranteed cold run.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from pathlib import Path

from ..analysis.artifacts import (
    SweepSpec,
    export_artifacts,
    load_spec,
    run_spec,
    stats_summary,
)
from ..analysis.report import render_report
from ..analysis.runstore import RunStore


def add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by ``sweep`` and ``report`` (must match for the
    two commands to agree on run-store keys)."""
    parser.add_argument("spec", type=Path, help="YAML/JSON sweep spec file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the spec to CI size (1 try, tiny instances, same grid)",
    )
    parser.add_argument(
        "--tries", type=int, help="override the spec's tries-per-point"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("artifacts"),
        help="artifact directory (default: ./artifacts)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        help="run store JSONL path (default: <out>/<spec name>/runstore.jsonl)",
    )


def resolve_spec(args: argparse.Namespace) -> SweepSpec:
    """Load the spec and apply the shared ``--smoke`` / ``--tries`` transforms.

    Invalid spec documents — unknown keys, malformed scheme specs, bad
    configs — exit cleanly with the validation message (which names the bad
    stage/scheme and lists the valid choices) instead of a traceback.
    """
    try:
        spec = load_spec(args.spec)
    except ValueError as error:
        raise SystemExit(f"repro: invalid sweep spec {args.spec}: {error}")
    if args.smoke:
        spec = spec.smoke()
    if args.tries is not None:
        spec = replace(spec, tries=args.tries)
    return spec


def resolve_store_path(args: argparse.Namespace, spec: SweepSpec) -> Path:
    """The run store location ``sweep`` writes and ``report`` reads."""
    if args.store is not None:
        return args.store
    return args.out / spec.name / "runstore.jsonl"


def configure(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``sweep`` subparser."""
    parser = subparsers.add_parser(
        "sweep",
        help="run a YAML/JSON sweep spec on the experiment engine",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_spec_arguments(parser)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="engine worker processes (0 = serial, >=2 = process pool)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="delete the run store first (a cold run instead of a resume)",
    )
    parser.set_defaults(func=execute)


def execute(args: argparse.Namespace) -> int:
    """Run the sweep and write artifacts."""
    spec = resolve_spec(args)
    store_path = resolve_store_path(args, spec)
    if args.fresh and store_path.exists():
        store_path.unlink()
    store = RunStore(store_path)
    resumed = len(store)
    if resumed:
        print(f"resuming from {store_path} ({resumed} recorded task(s))")

    run = run_spec(spec, store, workers=args.workers)
    paths = export_artifacts(
        args.out, spec, run.result, run.stats, run.fingerprints, store,
        extras=run.extras,
    )

    print(
        render_report(
            run.result,
            spec.display_title(),
            spec.reference,
            fmt="text",
            extras=run.extras,
        )
    )
    print()
    print(stats_summary(run.stats))
    for kind in ("run", "text", "markdown", "csv"):
        print(f"  {kind:<8} -> {paths[kind]}")
    print(f"  store    -> {store_path}")
    return 0
