"""``repro sweep`` — run a declarative sweep spec end-to-end.

Loads a YAML/JSON sweep spec (see :mod:`repro.analysis.artifacts`), drives
the experiment engine over its (point x try x scheme) grid — optionally
over ``--workers`` processes — and exports durable artifacts under
``--out/<spec name>/``: the resumable run store, ``run.json`` metadata with
full provenance, and the paper-style tables as text/Markdown/CSV.

Resume is the default: the run store is loaded if it exists and tasks
already recorded are never re-executed, so an interrupted sweep continues
where it stopped and a completed sweep re-invoked is pure aggregation.
``--fresh`` deletes the store first for a guaranteed cold run.

The sweep is fault-tolerant: transient task errors (timeouts, killed
workers) are retried with backoff up to ``--max-retries`` times, and
permanent errors (e.g. an infeasible LP) become structured *failure
records* in the run store — the sweep completes, the failed cells render
as ``nan`` plus a failures block, and the exit status reflects coverage:
0 when at least ``--min-coverage`` of the grid succeeded (default 1.0,
i.e. any failure is nonzero), 3 otherwise.  ``--retry-failed`` re-runs
recorded failures on resume; ``--inject-faults`` enables the
deterministic chaos harness (see docs/robustness.md).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from ..analysis.artifacts import (
    SweepSpec,
    export_artifacts,
    load_spec,
    run_spec,
    stats_summary,
)
from ..analysis.report import render_report
from ..analysis.runstore import RunStore
from ..faults import FaultConfig

#: Exit status when the sweep completed but coverage fell below
#: ``--min-coverage`` (distinct from argparse's 2 and generic failure's 1).
EXIT_COVERAGE = 3


def add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by ``sweep`` and ``report`` (must match for the
    two commands to agree on run-store keys)."""
    parser.add_argument("spec", type=Path, help="YAML/JSON sweep spec file")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the spec to CI size (1 try, tiny instances, same grid)",
    )
    parser.add_argument(
        "--tries", type=int, help="override the spec's tries-per-point"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("artifacts"),
        help="artifact directory (default: ./artifacts)",
    )
    parser.add_argument(
        "--store",
        type=Path,
        help="run store JSONL path (default: <out>/<spec name>/runstore.jsonl)",
    )


def resolve_spec(args: argparse.Namespace) -> SweepSpec:
    """Load the spec and apply the shared ``--smoke`` / ``--tries`` transforms.

    Invalid spec documents — unknown keys, malformed scheme specs, bad
    configs — exit cleanly with the validation message (which names the bad
    stage/scheme and lists the valid choices) instead of a traceback.
    """
    try:
        spec = load_spec(args.spec)
    except ValueError as error:
        raise SystemExit(f"repro: invalid sweep spec {args.spec}: {error}")
    if args.smoke:
        spec = spec.smoke()
    if args.tries is not None:
        spec = replace(spec, tries=args.tries)
    return spec


def resolve_store_path(args: argparse.Namespace, spec: SweepSpec) -> Path:
    """The run store location ``sweep`` writes and ``report`` reads."""
    if args.store is not None:
        return args.store
    return args.out / spec.name / "runstore.jsonl"


def configure(subparsers: argparse._SubParsersAction) -> None:
    """Register the ``sweep`` subparser."""
    parser = subparsers.add_parser(
        "sweep",
        help="run a YAML/JSON sweep spec on the experiment engine",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_spec_arguments(parser)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="engine worker processes (0 = serial, >=2 = process pool)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="delete the run store first (a cold run instead of a resume)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per task for transient errors (default: 2)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="per-task wall-clock limit; an expired task is retried as "
        "transient, then recorded as a failure (default: none)",
    )
    parser.add_argument(
        "--lp-time-limit",
        type=float,
        metavar="SECONDS",
        help="time budget handed to the HiGHS solver for every LP solve "
        "(default: none)",
    )
    parser.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-run tasks recorded as permanent failures in the store "
        "(default: resume skips them)",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=1.0,
        metavar="FRACTION",
        help="minimum fraction of tasks that must succeed for exit status 0 "
        f"(default: 1.0 — any failure exits {EXIT_COVERAGE})",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help='deterministic fault injection, e.g. "rate=0.1,seed=7" or '
        '"rate=1.0,kinds=lp+timeout,seed=3,delay=0.2" (overrides the '
        "spec's own `faults` entry; see docs/robustness.md)",
    )
    parser.set_defaults(func=execute)


def execute(args: argparse.Namespace) -> int:
    """Run the sweep, write artifacts, and exit by coverage."""
    spec = resolve_spec(args)
    if not 0.0 <= args.min_coverage <= 1.0:
        raise SystemExit(
            f"repro sweep: --min-coverage must be in [0, 1], "
            f"got {args.min_coverage}"
        )
    faults = None
    if args.inject_faults is not None:
        try:
            faults = FaultConfig.from_spec(args.inject_faults)
        except ValueError as error:
            raise SystemExit(f"repro sweep: invalid --inject-faults: {error}")
    store_path = resolve_store_path(args, spec)
    if args.fresh and store_path.exists():
        store_path.unlink()
    store = RunStore(store_path)
    resumed = len(store)
    if resumed:
        print(f"resuming from {store_path} ({resumed} recorded task(s))")

    run = run_spec(
        spec,
        store,
        workers=args.workers,
        faults=faults,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        retry_failed=args.retry_failed,
        lp_time_limit=args.lp_time_limit,
    )
    paths = export_artifacts(
        args.out, spec, run.result, run.stats, run.fingerprints, store,
        extras=run.extras,
    )

    print(
        render_report(
            run.result,
            spec.display_title(),
            spec.reference,
            fmt="text",
            extras=run.extras,
        )
    )
    print()
    print(stats_summary(run.stats))
    for kind in ("run", "text", "markdown", "csv"):
        print(f"  {kind:<8} -> {paths[kind]}")
    print(f"  store    -> {store_path}")

    coverage = run.stats.coverage
    if run.stats.failed:
        print(
            f"repro sweep: {run.stats.failed} task(s) failed permanently "
            f"(coverage {coverage:.1%}); failed cells render as nan — "
            "re-run with --retry-failed to try them again",
            file=sys.stderr,
        )
    if coverage < args.min_coverage:
        print(
            f"repro sweep: coverage {coverage:.1%} is below "
            f"--min-coverage {args.min_coverage:.1%}",
            file=sys.stderr,
        )
        return EXIT_COVERAGE
    return 0
