"""Argument parsing and dispatch for the ``repro`` CLI.

Each subcommand lives in its own module exposing ``configure(subparsers)``
(which registers the subparser and sets ``func``); this module only builds
the top-level parser, handles ``--version`` provenance output, and
dispatches.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..analysis.artifacts import provenance_lines


def build_parser() -> argparse.ArgumentParser:
    """Build the complete ``repro`` argument parser (all subcommands)."""
    from . import bench, merge, report, run, sweep

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Jahanjou–Kantor–Rajaraman (SPAA'17) coflow scheduling: "
            "run schemes, sweep scenario specs, render the paper's tables."
        ),
    )
    parser.add_argument(
        "--version",
        action="store_true",
        help="print the package version and provenance summary (deliberate "
        "deviations from the paper included), then exit",
    )
    subparsers = parser.add_subparsers(dest="command", metavar="command")
    for module in (run, sweep, report, merge, bench):
        module.configure(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.version:
        print("\n".join(provenance_lines()))
        return 0
    if getattr(args, "func", None) is None:
        parser.print_help()
        return 2
    return int(args.func(args) or 0)
